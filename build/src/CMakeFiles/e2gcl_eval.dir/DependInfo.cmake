
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/graph_level.cc" "src/CMakeFiles/e2gcl_eval.dir/eval/graph_level.cc.o" "gcc" "src/CMakeFiles/e2gcl_eval.dir/eval/graph_level.cc.o.d"
  "/root/repo/src/eval/io.cc" "src/CMakeFiles/e2gcl_eval.dir/eval/io.cc.o" "gcc" "src/CMakeFiles/e2gcl_eval.dir/eval/io.cc.o.d"
  "/root/repo/src/eval/linear_probe.cc" "src/CMakeFiles/e2gcl_eval.dir/eval/linear_probe.cc.o" "gcc" "src/CMakeFiles/e2gcl_eval.dir/eval/linear_probe.cc.o.d"
  "/root/repo/src/eval/metrics.cc" "src/CMakeFiles/e2gcl_eval.dir/eval/metrics.cc.o" "gcc" "src/CMakeFiles/e2gcl_eval.dir/eval/metrics.cc.o.d"
  "/root/repo/src/eval/projection.cc" "src/CMakeFiles/e2gcl_eval.dir/eval/projection.cc.o" "gcc" "src/CMakeFiles/e2gcl_eval.dir/eval/projection.cc.o.d"
  "/root/repo/src/eval/protocol.cc" "src/CMakeFiles/e2gcl_eval.dir/eval/protocol.cc.o" "gcc" "src/CMakeFiles/e2gcl_eval.dir/eval/protocol.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/e2gcl_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/e2gcl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/e2gcl_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/e2gcl_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/e2gcl_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/e2gcl_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/e2gcl_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
