file(REMOVE_RECURSE
  "CMakeFiles/e2gcl_eval.dir/eval/graph_level.cc.o"
  "CMakeFiles/e2gcl_eval.dir/eval/graph_level.cc.o.d"
  "CMakeFiles/e2gcl_eval.dir/eval/io.cc.o"
  "CMakeFiles/e2gcl_eval.dir/eval/io.cc.o.d"
  "CMakeFiles/e2gcl_eval.dir/eval/linear_probe.cc.o"
  "CMakeFiles/e2gcl_eval.dir/eval/linear_probe.cc.o.d"
  "CMakeFiles/e2gcl_eval.dir/eval/metrics.cc.o"
  "CMakeFiles/e2gcl_eval.dir/eval/metrics.cc.o.d"
  "CMakeFiles/e2gcl_eval.dir/eval/projection.cc.o"
  "CMakeFiles/e2gcl_eval.dir/eval/projection.cc.o.d"
  "CMakeFiles/e2gcl_eval.dir/eval/protocol.cc.o"
  "CMakeFiles/e2gcl_eval.dir/eval/protocol.cc.o.d"
  "libe2gcl_eval.a"
  "libe2gcl_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e2gcl_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
