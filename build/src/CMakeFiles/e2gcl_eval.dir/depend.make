# Empty dependencies file for e2gcl_eval.
# This may be replaced when dependencies are built.
