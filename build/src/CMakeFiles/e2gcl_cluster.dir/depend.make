# Empty dependencies file for e2gcl_cluster.
# This may be replaced when dependencies are built.
