file(REMOVE_RECURSE
  "CMakeFiles/e2gcl_cluster.dir/cluster/kmeans.cc.o"
  "CMakeFiles/e2gcl_cluster.dir/cluster/kmeans.cc.o.d"
  "libe2gcl_cluster.a"
  "libe2gcl_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e2gcl_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
