file(REMOVE_RECURSE
  "libe2gcl_cluster.a"
)
