file(REMOVE_RECURSE
  "libe2gcl_tensor.a"
)
