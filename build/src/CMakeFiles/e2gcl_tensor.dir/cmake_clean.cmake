file(REMOVE_RECURSE
  "CMakeFiles/e2gcl_tensor.dir/tensor/csr.cc.o"
  "CMakeFiles/e2gcl_tensor.dir/tensor/csr.cc.o.d"
  "CMakeFiles/e2gcl_tensor.dir/tensor/matrix.cc.o"
  "CMakeFiles/e2gcl_tensor.dir/tensor/matrix.cc.o.d"
  "CMakeFiles/e2gcl_tensor.dir/tensor/rng.cc.o"
  "CMakeFiles/e2gcl_tensor.dir/tensor/rng.cc.o.d"
  "libe2gcl_tensor.a"
  "libe2gcl_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e2gcl_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
