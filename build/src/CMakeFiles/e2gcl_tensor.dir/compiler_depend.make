# Empty compiler generated dependencies file for e2gcl_tensor.
# This may be replaced when dependencies are built.
