file(REMOVE_RECURSE
  "CMakeFiles/e2gcl_autograd.dir/autograd/loss.cc.o"
  "CMakeFiles/e2gcl_autograd.dir/autograd/loss.cc.o.d"
  "CMakeFiles/e2gcl_autograd.dir/autograd/ops.cc.o"
  "CMakeFiles/e2gcl_autograd.dir/autograd/ops.cc.o.d"
  "CMakeFiles/e2gcl_autograd.dir/autograd/variable.cc.o"
  "CMakeFiles/e2gcl_autograd.dir/autograd/variable.cc.o.d"
  "libe2gcl_autograd.a"
  "libe2gcl_autograd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e2gcl_autograd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
