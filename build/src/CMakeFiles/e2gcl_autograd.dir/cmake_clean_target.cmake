file(REMOVE_RECURSE
  "libe2gcl_autograd.a"
)
