# Empty compiler generated dependencies file for e2gcl_autograd.
# This may be replaced when dependencies are built.
