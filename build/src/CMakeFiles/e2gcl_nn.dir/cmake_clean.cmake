file(REMOVE_RECURSE
  "CMakeFiles/e2gcl_nn.dir/nn/gat.cc.o"
  "CMakeFiles/e2gcl_nn.dir/nn/gat.cc.o.d"
  "CMakeFiles/e2gcl_nn.dir/nn/gcn.cc.o"
  "CMakeFiles/e2gcl_nn.dir/nn/gcn.cc.o.d"
  "CMakeFiles/e2gcl_nn.dir/nn/init.cc.o"
  "CMakeFiles/e2gcl_nn.dir/nn/init.cc.o.d"
  "CMakeFiles/e2gcl_nn.dir/nn/mlp.cc.o"
  "CMakeFiles/e2gcl_nn.dir/nn/mlp.cc.o.d"
  "CMakeFiles/e2gcl_nn.dir/nn/optim.cc.o"
  "CMakeFiles/e2gcl_nn.dir/nn/optim.cc.o.d"
  "libe2gcl_nn.a"
  "libe2gcl_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e2gcl_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
