
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/gat.cc" "src/CMakeFiles/e2gcl_nn.dir/nn/gat.cc.o" "gcc" "src/CMakeFiles/e2gcl_nn.dir/nn/gat.cc.o.d"
  "/root/repo/src/nn/gcn.cc" "src/CMakeFiles/e2gcl_nn.dir/nn/gcn.cc.o" "gcc" "src/CMakeFiles/e2gcl_nn.dir/nn/gcn.cc.o.d"
  "/root/repo/src/nn/init.cc" "src/CMakeFiles/e2gcl_nn.dir/nn/init.cc.o" "gcc" "src/CMakeFiles/e2gcl_nn.dir/nn/init.cc.o.d"
  "/root/repo/src/nn/mlp.cc" "src/CMakeFiles/e2gcl_nn.dir/nn/mlp.cc.o" "gcc" "src/CMakeFiles/e2gcl_nn.dir/nn/mlp.cc.o.d"
  "/root/repo/src/nn/optim.cc" "src/CMakeFiles/e2gcl_nn.dir/nn/optim.cc.o" "gcc" "src/CMakeFiles/e2gcl_nn.dir/nn/optim.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/e2gcl_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/e2gcl_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/e2gcl_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
