file(REMOVE_RECURSE
  "libe2gcl_nn.a"
)
