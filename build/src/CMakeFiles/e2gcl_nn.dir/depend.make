# Empty dependencies file for e2gcl_nn.
# This may be replaced when dependencies are built.
