
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/contrastive.cc" "src/CMakeFiles/e2gcl_core.dir/core/contrastive.cc.o" "gcc" "src/CMakeFiles/e2gcl_core.dir/core/contrastive.cc.o.d"
  "/root/repo/src/core/node_selector.cc" "src/CMakeFiles/e2gcl_core.dir/core/node_selector.cc.o" "gcc" "src/CMakeFiles/e2gcl_core.dir/core/node_selector.cc.o.d"
  "/root/repo/src/core/raw_aggregation.cc" "src/CMakeFiles/e2gcl_core.dir/core/raw_aggregation.cc.o" "gcc" "src/CMakeFiles/e2gcl_core.dir/core/raw_aggregation.cc.o.d"
  "/root/repo/src/core/scores.cc" "src/CMakeFiles/e2gcl_core.dir/core/scores.cc.o" "gcc" "src/CMakeFiles/e2gcl_core.dir/core/scores.cc.o.d"
  "/root/repo/src/core/trainer.cc" "src/CMakeFiles/e2gcl_core.dir/core/trainer.cc.o" "gcc" "src/CMakeFiles/e2gcl_core.dir/core/trainer.cc.o.d"
  "/root/repo/src/core/view_generator.cc" "src/CMakeFiles/e2gcl_core.dir/core/view_generator.cc.o" "gcc" "src/CMakeFiles/e2gcl_core.dir/core/view_generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/e2gcl_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/e2gcl_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/e2gcl_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/e2gcl_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/e2gcl_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
