file(REMOVE_RECURSE
  "libe2gcl_core.a"
)
