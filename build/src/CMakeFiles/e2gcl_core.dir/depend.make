# Empty dependencies file for e2gcl_core.
# This may be replaced when dependencies are built.
