file(REMOVE_RECURSE
  "CMakeFiles/e2gcl_core.dir/core/contrastive.cc.o"
  "CMakeFiles/e2gcl_core.dir/core/contrastive.cc.o.d"
  "CMakeFiles/e2gcl_core.dir/core/node_selector.cc.o"
  "CMakeFiles/e2gcl_core.dir/core/node_selector.cc.o.d"
  "CMakeFiles/e2gcl_core.dir/core/raw_aggregation.cc.o"
  "CMakeFiles/e2gcl_core.dir/core/raw_aggregation.cc.o.d"
  "CMakeFiles/e2gcl_core.dir/core/scores.cc.o"
  "CMakeFiles/e2gcl_core.dir/core/scores.cc.o.d"
  "CMakeFiles/e2gcl_core.dir/core/trainer.cc.o"
  "CMakeFiles/e2gcl_core.dir/core/trainer.cc.o.d"
  "CMakeFiles/e2gcl_core.dir/core/view_generator.cc.o"
  "CMakeFiles/e2gcl_core.dir/core/view_generator.cc.o.d"
  "libe2gcl_core.a"
  "libe2gcl_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e2gcl_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
