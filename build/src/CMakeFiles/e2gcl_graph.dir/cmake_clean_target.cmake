file(REMOVE_RECURSE
  "libe2gcl_graph.a"
)
