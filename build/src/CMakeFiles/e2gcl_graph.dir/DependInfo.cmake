
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/datasets.cc" "src/CMakeFiles/e2gcl_graph.dir/graph/datasets.cc.o" "gcc" "src/CMakeFiles/e2gcl_graph.dir/graph/datasets.cc.o.d"
  "/root/repo/src/graph/generators.cc" "src/CMakeFiles/e2gcl_graph.dir/graph/generators.cc.o" "gcc" "src/CMakeFiles/e2gcl_graph.dir/graph/generators.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/CMakeFiles/e2gcl_graph.dir/graph/graph.cc.o" "gcc" "src/CMakeFiles/e2gcl_graph.dir/graph/graph.cc.o.d"
  "/root/repo/src/graph/ppr.cc" "src/CMakeFiles/e2gcl_graph.dir/graph/ppr.cc.o" "gcc" "src/CMakeFiles/e2gcl_graph.dir/graph/ppr.cc.o.d"
  "/root/repo/src/graph/splits.cc" "src/CMakeFiles/e2gcl_graph.dir/graph/splits.cc.o" "gcc" "src/CMakeFiles/e2gcl_graph.dir/graph/splits.cc.o.d"
  "/root/repo/src/graph/tu_generator.cc" "src/CMakeFiles/e2gcl_graph.dir/graph/tu_generator.cc.o" "gcc" "src/CMakeFiles/e2gcl_graph.dir/graph/tu_generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/e2gcl_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
