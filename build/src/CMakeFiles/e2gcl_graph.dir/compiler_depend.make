# Empty compiler generated dependencies file for e2gcl_graph.
# This may be replaced when dependencies are built.
