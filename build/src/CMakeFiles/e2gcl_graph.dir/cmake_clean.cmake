file(REMOVE_RECURSE
  "CMakeFiles/e2gcl_graph.dir/graph/datasets.cc.o"
  "CMakeFiles/e2gcl_graph.dir/graph/datasets.cc.o.d"
  "CMakeFiles/e2gcl_graph.dir/graph/generators.cc.o"
  "CMakeFiles/e2gcl_graph.dir/graph/generators.cc.o.d"
  "CMakeFiles/e2gcl_graph.dir/graph/graph.cc.o"
  "CMakeFiles/e2gcl_graph.dir/graph/graph.cc.o.d"
  "CMakeFiles/e2gcl_graph.dir/graph/ppr.cc.o"
  "CMakeFiles/e2gcl_graph.dir/graph/ppr.cc.o.d"
  "CMakeFiles/e2gcl_graph.dir/graph/splits.cc.o"
  "CMakeFiles/e2gcl_graph.dir/graph/splits.cc.o.d"
  "CMakeFiles/e2gcl_graph.dir/graph/tu_generator.cc.o"
  "CMakeFiles/e2gcl_graph.dir/graph/tu_generator.cc.o.d"
  "libe2gcl_graph.a"
  "libe2gcl_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e2gcl_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
