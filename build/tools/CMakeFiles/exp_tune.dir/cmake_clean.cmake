file(REMOVE_RECURSE
  "CMakeFiles/exp_tune.dir/exp_tune.cc.o"
  "CMakeFiles/exp_tune.dir/exp_tune.cc.o.d"
  "exp_tune"
  "exp_tune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_tune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
