# Empty compiler generated dependencies file for exp_tune.
# This may be replaced when dependencies are built.
