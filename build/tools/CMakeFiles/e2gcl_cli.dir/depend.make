# Empty dependencies file for e2gcl_cli.
# This may be replaced when dependencies are built.
