file(REMOVE_RECURSE
  "CMakeFiles/e2gcl_cli.dir/e2gcl_cli.cc.o"
  "CMakeFiles/e2gcl_cli.dir/e2gcl_cli.cc.o.d"
  "e2gcl_cli"
  "e2gcl_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e2gcl_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
