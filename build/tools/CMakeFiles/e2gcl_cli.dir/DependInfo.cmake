
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/e2gcl_cli.cc" "tools/CMakeFiles/e2gcl_cli.dir/e2gcl_cli.cc.o" "gcc" "tools/CMakeFiles/e2gcl_cli.dir/e2gcl_cli.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/e2gcl_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/e2gcl_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/e2gcl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/e2gcl_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/e2gcl_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/e2gcl_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/e2gcl_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/e2gcl_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
