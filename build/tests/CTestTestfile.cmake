# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/tensor_matrix_test[1]_include.cmake")
include("/root/repo/build/tests/tensor_csr_test[1]_include.cmake")
include("/root/repo/build/tests/tensor_rng_test[1]_include.cmake")
include("/root/repo/build/tests/autograd_ops_test[1]_include.cmake")
include("/root/repo/build/tests/autograd_loss_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/generators_test[1]_include.cmake")
include("/root/repo/build/tests/splits_ppr_tu_test[1]_include.cmake")
include("/root/repo/build/tests/kmeans_test[1]_include.cmake")
include("/root/repo/build/tests/nn_test[1]_include.cmake")
include("/root/repo/build/tests/core_selector_test[1]_include.cmake")
include("/root/repo/build/tests/core_view_test[1]_include.cmake")
include("/root/repo/build/tests/core_trainer_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/graph_level_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_sweeps_test[1]_include.cmake")
include("/root/repo/build/tests/theory_test[1]_include.cmake")
include("/root/repo/build/tests/gat_io_projection_test[1]_include.cmake")
include("/root/repo/build/tests/failure_injection_test[1]_include.cmake")
