file(REMOVE_RECURSE
  "CMakeFiles/graph_level_test.dir/graph_level_test.cc.o"
  "CMakeFiles/graph_level_test.dir/graph_level_test.cc.o.d"
  "graph_level_test"
  "graph_level_test.pdb"
  "graph_level_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_level_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
