file(REMOVE_RECURSE
  "CMakeFiles/splits_ppr_tu_test.dir/splits_ppr_tu_test.cc.o"
  "CMakeFiles/splits_ppr_tu_test.dir/splits_ppr_tu_test.cc.o.d"
  "splits_ppr_tu_test"
  "splits_ppr_tu_test.pdb"
  "splits_ppr_tu_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splits_ppr_tu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
