# Empty dependencies file for splits_ppr_tu_test.
# This may be replaced when dependencies are built.
