file(REMOVE_RECURSE
  "CMakeFiles/gat_io_projection_test.dir/gat_io_projection_test.cc.o"
  "CMakeFiles/gat_io_projection_test.dir/gat_io_projection_test.cc.o.d"
  "gat_io_projection_test"
  "gat_io_projection_test.pdb"
  "gat_io_projection_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gat_io_projection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
