# Empty dependencies file for gat_io_projection_test.
# This may be replaced when dependencies are built.
