file(REMOVE_RECURSE
  "CMakeFiles/autograd_loss_test.dir/autograd_loss_test.cc.o"
  "CMakeFiles/autograd_loss_test.dir/autograd_loss_test.cc.o.d"
  "autograd_loss_test"
  "autograd_loss_test.pdb"
  "autograd_loss_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autograd_loss_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
