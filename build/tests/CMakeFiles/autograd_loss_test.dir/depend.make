# Empty dependencies file for autograd_loss_test.
# This may be replaced when dependencies are built.
