# Empty compiler generated dependencies file for coreset_selection.
# This may be replaced when dependencies are built.
