file(REMOVE_RECURSE
  "CMakeFiles/coreset_selection.dir/coreset_selection.cpp.o"
  "CMakeFiles/coreset_selection.dir/coreset_selection.cpp.o.d"
  "coreset_selection"
  "coreset_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coreset_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
