file(REMOVE_RECURSE
  "CMakeFiles/coreset_visualization.dir/coreset_visualization.cpp.o"
  "CMakeFiles/coreset_visualization.dir/coreset_visualization.cpp.o.d"
  "coreset_visualization"
  "coreset_visualization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coreset_visualization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
