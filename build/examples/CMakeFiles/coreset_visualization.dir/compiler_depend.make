# Empty compiler generated dependencies file for coreset_visualization.
# This may be replaced when dependencies are built.
