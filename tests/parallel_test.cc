// ThreadPool smoke tests plus the determinism contract: every parallel
// kernel must produce bit-identical output at any thread count, because
// chunking is fixed and size-based and per-chunk partials are reduced in
// chunk order (see DESIGN.md "Threading model"). Thread counts 1, 2, and
// 7 are used: 1 exercises the inline path, 2 the smallest real pool, and
// the odd 7 catches chunk-boundary bugs that even splits mask.

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "autograd/loss.h"
#include "autograd/ops.h"
#include "cluster/kmeans.h"
#include "core/contrastive.h"
#include "core/node_selector.h"
#include "parallel/parallel_for.h"
#include "parallel/thread_pool.h"
#include "tensor/csr.h"
#include "tensor/matrix.h"

namespace e2gcl {
namespace {

constexpr int kThreadCounts[] = {1, 2, 7};

/// Runs `compute` once per thread count and checks that every result is
/// bit-identical to the 1-thread result via the provided exact-equality
/// comparator.
template <typename Result, typename Compute>
void ExpectSameAtAllThreadCounts(const Compute& compute) {
  SetNumThreads(1);
  const Result baseline = compute();
  for (int threads : kThreadCounts) {
    SetNumThreads(threads);
    const Result got = compute();
    EXPECT_TRUE(got == baseline) << "result differs at " << threads
                                 << " threads";
  }
  SetNumThreads(1);
}

Matrix RandomMatrix(std::int64_t r, std::int64_t c, std::uint64_t seed) {
  Rng rng(seed);
  return Matrix::RandomNormal(r, c, 0.0f, 1.0f, rng);
}

CsrMatrix RandomSparse(std::int64_t rows, std::int64_t cols,
                       std::int64_t nnz, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::tuple<std::int64_t, std::int64_t, float>> triplets;
  triplets.reserve(nnz);
  for (std::int64_t i = 0; i < nnz; ++i) {
    triplets.emplace_back(rng.UniformInt(rows), rng.UniformInt(cols),
                          rng.Uniform(-1.0f, 1.0f));
  }
  return CsrMatrix::FromCoo(rows, cols, std::move(triplets));
}

// ---------------------------------------------------------------------------
// ThreadPool smoke tests.
// ---------------------------------------------------------------------------

TEST(ThreadPool, RunsEveryChunkExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::int64_t kChunks = 1000;
  std::vector<std::atomic<int>> hits(kChunks);
  pool.Run(kChunks, [&](std::int64_t c) { hits[c].fetch_add(1); });
  for (std::int64_t c = 0; c < kChunks; ++c) {
    EXPECT_EQ(hits[c].load(), 1) << "chunk " << c;
  }
}

TEST(ThreadPool, ZeroAndNegativeChunksAreNoOps) {
  ThreadPool pool(3);
  int calls = 0;
  pool.Run(0, [&](std::int64_t) { ++calls; });
  pool.Run(-5, [&](std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, ReusableAcrossJobs) {
  ThreadPool pool(4);
  for (int job = 0; job < 50; ++job) {
    std::atomic<std::int64_t> sum{0};
    pool.Run(17, [&](std::int64_t c) { sum.fetch_add(c); });
    EXPECT_EQ(sum.load(), 17 * 16 / 2);
  }
}

TEST(ThreadPool, NestedRunExecutesInline) {
  ThreadPool pool(4);
  std::atomic<int> inner_total{0};
  pool.Run(8, [&](std::int64_t) {
    // Nested call must not deadlock; it runs inline on this worker.
    pool.Run(4, [&](std::int64_t) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 8 * 4);
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.Run(64,
               [&](std::int64_t c) {
                 if (c == 13) throw std::runtime_error("boom");
               }),
      std::runtime_error);
  // Pool stays usable after an exception.
  std::atomic<int> ok{0};
  pool.Run(8, [&](std::int64_t) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 8);
}

TEST(ThreadPool, SetNumThreadsResizesGlobalPool) {
  SetNumThreads(7);
  EXPECT_EQ(GetNumThreads(), 7);
  EXPECT_EQ(GlobalThreadPool().num_threads(), 7);
  SetNumThreads(2);
  EXPECT_EQ(GlobalThreadPool().num_threads(), 2);
  SetNumThreads(1);
}

TEST(ParallelForChunks, FixedChunkingCoversRangeInOrder) {
  SetNumThreads(1);  // single thread => chunks arrive in index order
  std::vector<std::int64_t> seen;
  ParallelForChunks(3, 50, 10,
                    [&](std::int64_t chunk, std::int64_t b, std::int64_t e) {
                      EXPECT_EQ(b, 3 + chunk * 10);
                      EXPECT_EQ(e, std::min<std::int64_t>(50, b + 10));
                      for (std::int64_t i = b; i < e; ++i) seen.push_back(i);
                    });
  ASSERT_EQ(seen.size(), 47u);
  for (std::int64_t i = 0; i < 47; ++i) EXPECT_EQ(seen[i], i + 3);
  EXPECT_EQ(NumChunks(47, 10), 5);
  EXPECT_EQ(NumChunks(0, 10), 0);
  EXPECT_EQ(NumChunks(1, 0), 1);  // grain clamps to >= 1
}

// ---------------------------------------------------------------------------
// Bit-identical kernel outputs across thread counts. Sizes are chosen to
// exceed every chunking floor, so the multi-chunk reduction paths are
// genuinely exercised (not just the single-chunk serial fallbacks).
// ---------------------------------------------------------------------------

TEST(ParallelDeterminism, MatMul) {
  const Matrix a = RandomMatrix(517, 96, 0xa);
  const Matrix b = RandomMatrix(96, 73, 0xb);
  ExpectSameAtAllThreadCounts<Matrix>([&] { return MatMul(a, b); });
}

TEST(ParallelDeterminism, MatMulTransposedB) {
  const Matrix a = RandomMatrix(301, 64, 0xc);
  const Matrix b = RandomMatrix(211, 64, 0xd);
  ExpectSameAtAllThreadCounts<Matrix>(
      [&] { return MatMulTransposedB(a, b); });
}

TEST(ParallelDeterminism, MatMulTransposedAMultiChunk) {
  // k = 1700 rows > the 512-row floor: the per-chunk partial reduction
  // path runs with several chunks.
  const Matrix a = RandomMatrix(1700, 23, 0xe);
  const Matrix b = RandomMatrix(1700, 31, 0xf);
  ExpectSameAtAllThreadCounts<Matrix>(
      [&] { return MatMulTransposedA(a, b); });
}

TEST(ParallelDeterminism, Spmm) {
  const CsrMatrix a = RandomSparse(900, 700, 12000, 0x10);
  const Matrix b = RandomMatrix(700, 48, 0x11);
  ExpectSameAtAllThreadCounts<Matrix>([&] { return Spmm(a, b); });
}

TEST(ParallelDeterminism, SpmmTransposedAMultiChunk) {
  // 1500 input rows > the 512-row scatter floor => per-chunk partials.
  const CsrMatrix a = RandomSparse(1500, 400, 18000, 0x12);
  const Matrix b = RandomMatrix(1500, 40, 0x13);
  ExpectSameAtAllThreadCounts<Matrix>([&] { return SpmmTransposedA(a, b); });
}

TEST(ParallelDeterminism, Reductions) {
  const Matrix a = RandomMatrix(450, 300, 0x14);  // 135k elements, multi-chunk
  const Matrix b = RandomMatrix(450, 300, 0x15);
  struct Result {
    float sum, fro, mad;
    Matrix colsums;
    bool operator==(const Result& o) const {
      return sum == o.sum && fro == o.fro && mad == o.mad &&
             colsums == o.colsums;
    }
  };
  ExpectSameAtAllThreadCounts<Result>([&] {
    return Result{SumAll(a), FrobeniusNorm(a), MaxAbsDiff(a, b), ColSums(a)};
  });
}

TEST(ParallelDeterminism, RowKernels) {
  const Matrix a = RandomMatrix(700, 120, 0x16);
  struct Result {
    Matrix normalized, softmax, rowsums, norms;
    bool operator==(const Result& o) const {
      return normalized == o.normalized && softmax == o.softmax &&
             rowsums == o.rowsums && norms == o.norms;
    }
  };
  ExpectSameAtAllThreadCounts<Result>([&] {
    return Result{NormalizeRowsL2(a), SoftmaxRows(a), RowSums(a),
                  RowL2Norms(a)};
  });
}

TEST(ParallelDeterminism, KMeans) {
  const Matrix points = RandomMatrix(1400, 24, 0x17);
  KMeansOptions opts;
  opts.num_clusters = 13;
  opts.max_iters = 12;
  struct Result {
    Matrix centers;
    std::vector<std::int64_t> assignment;
    double inertia;
    bool operator==(const Result& o) const {
      return centers == o.centers && assignment == o.assignment &&
             inertia == o.inertia;
    }
  };
  ExpectSameAtAllThreadCounts<Result>([&] {
    Rng rng(0x18);  // fresh stream per run => identical sampling
    KMeansResult res = KMeans(points, opts, rng);
    return Result{res.centers, res.assignment, res.inertia};
  });
}

TEST(ParallelDeterminism, SelectCoreset) {
  const Matrix r = RandomMatrix(900, 32, 0x19);
  SelectorConfig cfg;
  cfg.budget = 60;
  cfg.num_clusters = 12;
  struct Result {
    std::vector<std::int64_t> nodes;
    std::vector<float> weights;
    double representativity;
    bool operator==(const Result& o) const {
      return nodes == o.nodes && weights == o.weights &&
             representativity == o.representativity;
    }
  };
  ExpectSameAtAllThreadCounts<Result>([&] {
    Rng rng(0x1a);
    SelectionResult res = SelectCoreset(r, cfg, rng);
    return Result{res.nodes, res.weights, res.representativity};
  });
}

TEST(ParallelDeterminism, InfoNceLossAndGradients) {
  // n = 300 anchors > the 64-row loss floor => several loss chunks.
  const Matrix z1 = NormalizeRowsL2(RandomMatrix(300, 40, 0x1b));
  const Matrix z2 = NormalizeRowsL2(RandomMatrix(300, 40, 0x1c));
  struct Result {
    float loss;
    Matrix da, db;
    bool operator==(const Result& o) const {
      return loss == o.loss && da == o.da && db == o.db;
    }
  };
  ExpectSameAtAllThreadCounts<Result>([&] {
    Var a = Var::Param(z1);
    Var b = Var::Param(z2);
    Var loss = ag::InfoNce(a, b, 0.5f);
    loss.Backward();
    return Result{loss.value()(0, 0), a.grad(), b.grad()};
  });
}

TEST(ParallelDeterminism, EuclideanContrastiveLoss) {
  const Matrix z1 = RandomMatrix(500, 32, 0x1d);
  const Matrix z2 = RandomMatrix(500, 32, 0x1e);
  ExpectSameAtAllThreadCounts<float>([&] {
    Rng rng(0x1f);
    auto perm = SampleNegativePermutation(z1.rows(), rng);
    Var loss = ag::EuclideanContrastive(Var::Constant(z1), Var::Constant(z2),
                                        perm);
    return loss.value()(0, 0);
  });
}

}  // namespace
}  // namespace e2gcl
