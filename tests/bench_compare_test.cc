// Tests for the bench_compare regression gate (obs/report_compare):
// equal telemetry passes with exit code 0, timings past the threshold
// regress with exit code 1, and missing/corrupt/mismatched files report
// a clear error with exit code 2. Covers both supported formats —
// run_report.json objects and BENCH_*.json micro-benchmark arrays.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "obs/report_compare.h"
#include "obs/run_report.h"

namespace e2gcl {
namespace {

namespace fs = std::filesystem;

class BenchCompareTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("e2gcl_bench_compare_test_" + std::to_string(::getpid())))
               .string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string WriteFile(const std::string& name, const std::string& text) {
    const std::string path = dir_ + "/" + name;
    std::ofstream out(path);
    out << text;
    return path;
  }

  /// Writes a run report whose timings are `scale`× the base values.
  std::string WriteReport(const std::string& name, double scale,
                          std::uint64_t counter_value = 100) {
    RunReport r;
    r.config_fingerprint = "0123456789abcdef";
    r.seed = 1;
    r.threads = 4;
    r.status = "ok";
    r.selection_seconds = 0.5 * scale;
    r.total_seconds = 10.0 * scale;
    for (int i = 0; i < 3; ++i) {
      RunReport::Epoch e;
      e.epoch = i;
      e.loss = 0.5;
      e.view_seconds = 0.1 * scale;
      e.loss_seconds = 0.2 * scale;
      e.step_seconds = 0.3 * scale;
      e.checkpoint_seconds = 0.05 * scale;
      e.counters = {{"matmul.calls", counter_value}};
      r.epochs.push_back(e);
    }
    r.metrics.counters = {{"matmul.calls", counter_value}};
    const std::string path = dir_ + "/" + name;
    EXPECT_TRUE(SaveRunReport(path, r));
    return path;
  }

  std::string WriteBench(const std::string& name, double ns_a, double ns_b) {
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "[\n"
        "  {\"kernel\": \"matmul\", \"name\": \"matmul_256\", \"size\": 256,"
        " \"threads\": 4, \"ns_per_iter\": %.17g},\n"
        "  {\"kernel\": \"spmm\", \"name\": \"spmm_1k\", \"size\": 1000,"
        " \"threads\": 4, \"ns_per_iter\": %.17g}\n"
        "]\n",
        ns_a, ns_b);
    return WriteFile(name, buf);
  }

  std::string dir_;
};

// ---------------------------------------------------------------------------
// Run-report comparisons.
// ---------------------------------------------------------------------------

TEST_F(BenchCompareTest, IdenticalReportsPassWithExitZero) {
  const std::string base = WriteReport("base.json", 1.0);
  const std::string cand = WriteReport("cand.json", 1.0);
  const CompareResult r = CompareReportFiles(base, cand, CompareOptions());
  EXPECT_TRUE(r.ok);
  EXPECT_TRUE(r.error.empty());
  EXPECT_TRUE(r.regressions.empty());
  EXPECT_EQ(CompareExitCode(r), 0);
}

TEST_F(BenchCompareTest, TwoTimesSlowdownIsFlagged) {
  const std::string base = WriteReport("base.json", 1.0);
  const std::string cand = WriteReport("cand.json", 2.0);
  const CompareResult r = CompareReportFiles(base, cand, CompareOptions());
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(r.error.empty());
  // Every timed dimension regressed: total, selection, and the four
  // per-epoch stage sums.
  EXPECT_EQ(r.regressions.size(), 6u);
  EXPECT_EQ(CompareExitCode(r), 1);
}

TEST_F(BenchCompareTest, ThresholdIsConfigurable) {
  const std::string base = WriteReport("base.json", 1.0);
  const std::string cand = WriteReport("cand.json", 2.0);
  CompareOptions lenient;
  lenient.threshold = 3.0;  // 2x slower is tolerated
  const CompareResult r = CompareReportFiles(base, cand, lenient);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(CompareExitCode(r), 0);
}

TEST_F(BenchCompareTest, ImprovementIsANoteNotARegression) {
  const std::string base = WriteReport("base.json", 2.0);
  const std::string cand = WriteReport("cand.json", 1.0);
  const CompareResult r = CompareReportFiles(base, cand, CompareOptions());
  EXPECT_TRUE(r.ok);
  EXPECT_TRUE(r.regressions.empty());
  EXPECT_FALSE(r.notes.empty());
}

TEST_F(BenchCompareTest, CounterMismatchRegressesOnlyWhenRequired) {
  const std::string base = WriteReport("base.json", 1.0, 100);
  const std::string cand = WriteReport("cand.json", 1.0, 101);
  EXPECT_TRUE(CompareReportFiles(base, cand, CompareOptions()).ok);

  CompareOptions strict;
  strict.require_equal_counters = true;
  const CompareResult r = CompareReportFiles(base, cand, strict);
  EXPECT_FALSE(r.ok);
  ASSERT_EQ(r.regressions.size(), 1u);
  EXPECT_NE(r.regressions[0].find("matmul.calls"), std::string::npos);
  EXPECT_EQ(CompareExitCode(r), 1);
}

// ---------------------------------------------------------------------------
// BENCH_*.json array comparisons.
// ---------------------------------------------------------------------------

TEST_F(BenchCompareTest, EqualBenchArraysPass) {
  const std::string base = WriteBench("base.json", 1000.0, 2000.0);
  const std::string cand = WriteBench("cand.json", 1000.0, 2000.0);
  const CompareResult r = CompareReportFiles(base, cand, CompareOptions());
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(CompareExitCode(r), 0);
}

TEST_F(BenchCompareTest, SlowerBenchKernelIsFlagged) {
  const std::string base = WriteBench("base.json", 1000.0, 2000.0);
  const std::string cand = WriteBench("cand.json", 2000.0, 2000.0);
  const CompareResult r = CompareReportFiles(base, cand, CompareOptions());
  EXPECT_FALSE(r.ok);
  ASSERT_EQ(r.regressions.size(), 1u);
  EXPECT_NE(r.regressions[0].find("matmul_256"), std::string::npos);
  EXPECT_EQ(CompareExitCode(r), 1);
}

TEST_F(BenchCompareTest, MissingBenchRecordIsANote) {
  const std::string base = WriteBench("base.json", 1000.0, 2000.0);
  const std::string cand = WriteFile(
      "cand.json",
      "[{\"kernel\": \"matmul\", \"name\": \"matmul_256\", \"size\": 256,"
      " \"threads\": 4, \"ns_per_iter\": 1000.0}]");
  const CompareResult r = CompareReportFiles(base, cand, CompareOptions());
  EXPECT_TRUE(r.ok);  // absence is informational, not a regression
  ASSERT_EQ(r.notes.size(), 1u);
  EXPECT_NE(r.notes[0].find("spmm_1k"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Error handling: missing, corrupt, and mismatched inputs.
// ---------------------------------------------------------------------------

TEST_F(BenchCompareTest, MissingFileIsAnError) {
  const std::string base = WriteReport("base.json", 1.0);
  const CompareResult r = CompareReportFiles(base, dir_ + "/nope.json",
                                             CompareOptions());
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.error.empty());
  EXPECT_EQ(CompareExitCode(r), 2);
}

TEST_F(BenchCompareTest, CorruptJsonIsAnError) {
  const std::string base = WriteReport("base.json", 1.0);
  const std::string corrupt = WriteFile("corrupt.json", "{\"schema\": ");
  const CompareResult r =
      CompareReportFiles(base, corrupt, CompareOptions());
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.error.empty());
  EXPECT_EQ(CompareExitCode(r), 2);
}

TEST_F(BenchCompareTest, MismatchedFormatsAreAnError) {
  const std::string report = WriteReport("report.json", 1.0);
  const std::string bench = WriteBench("bench.json", 1000.0, 2000.0);
  const CompareResult r =
      CompareReportFiles(report, bench, CompareOptions());
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("formats differ"), std::string::npos);
  EXPECT_EQ(CompareExitCode(r), 2);
}

TEST_F(BenchCompareTest, UnrecognizedJsonShapeIsAnError) {
  const std::string a = WriteFile("a.json", "{\"what\": 1}");
  const std::string b = WriteFile("b.json", "{\"what\": 1}");
  const CompareResult r = CompareReportFiles(a, b, CompareOptions());
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.error.empty());
  EXPECT_EQ(CompareExitCode(r), 2);
}

TEST_F(BenchCompareTest, NonPositiveThresholdIsAnError) {
  const std::string base = WriteReport("base.json", 1.0);
  CompareOptions bad;
  bad.threshold = 0.0;
  const CompareResult r = CompareReportFiles(base, base, bad);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("threshold"), std::string::npos);
  EXPECT_EQ(CompareExitCode(r), 2);
}

}  // namespace
}  // namespace e2gcl
