// Hash-order regression suite: PPR and view-generator outputs must be
// identical no matter how std::unordered_{map,set} happens to order
// its buckets (hash seed, insertion history, relabeled keys). The
// library guarantees this by never letting hash iteration order feed
// an accumulation or an ordered output (lint rule
// `unordered-iteration`); these tests pin the behavior down:
//
//  - relabeling nodes permutes every unordered-container key (a proxy
//    for changing the hash seed, which libstdc++ does not expose) and
//    must permute the outputs exactly;
//  - exact mass ties in top-k sparsification resolve by node id, not
//    by bucket order;
//  - repeated runs are bit-identical.

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/view_generator.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/ppr.h"
#include "test_util.h"

namespace e2gcl {
namespace {

/// Relabels g's nodes via `perm` (new id = perm[old id]).
Graph Relabel(const Graph& g, const std::vector<std::int64_t>& perm) {
  std::vector<std::pair<std::int64_t, std::int64_t>> edges;
  for (const auto& [u, v] : UndirectedEdges(g)) {
    edges.emplace_back(perm[u], perm[v]);
  }
  return BuildGraph(g.num_nodes, edges, Matrix(), {}, 0);
}

/// An id permutation that maximally scrambles unordered-container
/// bucket placement relative to the identity labeling.
std::vector<std::int64_t> ScramblePermutation(std::int64_t n) {
  std::vector<std::int64_t> perm(n);
  Rng rng(99);
  for (std::int64_t i = 0; i < n; ++i) perm[i] = i;
  rng.Shuffle(perm);
  return perm;
}

Graph TestGraph(std::uint64_t seed) {
  return GenerateErdosRenyi(/*num_nodes=*/60, /*edge_prob=*/0.08,
                            /*feature_dim=*/0, seed);
}

// --- KHopNeighborhood: exact relabel equivariance. -------------------

TEST(HashOrder, KHopNeighborhoodIsRelabelEquivariant) {
  Graph g = TestGraph(7);
  const auto perm = ScramblePermutation(g.num_nodes);
  Graph h = Relabel(g, perm);
  for (std::int64_t root : {0, 5, 17, 42}) {
    std::vector<std::int64_t> a = KHopNeighborhood(g, root, 2);
    for (std::int64_t& v : a) v = perm[v];
    std::sort(a.begin(), a.end());
    std::vector<std::int64_t> b = KHopNeighborhood(h, perm[root], 2);
    EXPECT_EQ(a, b) << "root " << root;
  }
}

// --- PPR: relabel equivariance of support and values. ----------------

TEST(HashOrder, PprIsRelabelEquivariant) {
  Graph g = TestGraph(11);
  const auto perm = ScramblePermutation(g.num_nodes);
  Graph h = Relabel(g, perm);
  // Relabeling permutes CSR adjacency order, so the local-push visit
  // sequence legitimately differs and values agree only to the
  // residual threshold; a tight epsilon separates that approximation
  // error from a genuine hash-order dependence (which would move mass
  // by O(alpha), orders of magnitude above this tolerance).
  PprOptions opts;
  opts.epsilon = 1e-7;
  opts.top_k = 0;
  Matrix a = ApproximatePpr(g, opts).ToDense();
  Matrix b = ApproximatePpr(h, opts).ToDense();
  ASSERT_EQ(a.rows(), b.rows());
  for (std::int64_t s = 0; s < g.num_nodes; ++s) {
    for (std::int64_t v = 0; v < g.num_nodes; ++v) {
      EXPECT_NEAR(a(s, v), b(perm[s], perm[v]), 1e-5f)
          << "at (" << s << ", " << v << ")";
    }
  }
}

// --- PPR: exact ties resolve by node id, not bucket order. -----------

TEST(HashOrder, PprTopKTieBreaksByNodeId) {
  // Cycle graph: from any source the two distance-1 neighbors receive
  // bitwise-identical mass by mirror symmetry, so top_k = 2 forces a
  // tie the old hash-ordered nth_element resolved arbitrarily.
  const std::int64_t n = 8;
  std::vector<std::pair<std::int64_t, std::int64_t>> edges;
  for (std::int64_t v = 0; v < n; ++v) edges.emplace_back(v, (v + 1) % n);
  Graph g = BuildGraph(n, edges, Matrix(), {}, 0);
  PprOptions opts;
  opts.alpha = 0.2;
  opts.top_k = 2;
  Matrix p = ApproximatePpr(g, opts).ToDense();
  for (std::int64_t s = 0; s < n; ++s) {
    std::set<std::int64_t> support;
    for (std::int64_t v = 0; v < n; ++v) {
      if (p(s, v) != 0.0f) support.insert(v);
    }
    const std::int64_t lo = std::min((s + 1) % n, (s + n - 1) % n);
    EXPECT_EQ(support, (std::set<std::int64_t>{s, lo})) << "source " << s;
  }
}

// --- Bit-identical repetition (PPR + diffusion). ---------------------

TEST(HashOrder, PprAndDiffusionAreBitIdenticalAcrossRuns) {
  Graph g = TestGraph(13);
  PprOptions opts;
  opts.top_k = 6;
  Matrix a = ApproximatePpr(g, opts).ToDense();
  Matrix b = ApproximatePpr(g, opts).ToDense();
  for (std::int64_t r = 0; r < a.rows(); ++r) {
    for (std::int64_t c = 0; c < a.cols(); ++c) {
      ASSERT_EQ(a(r, c), b(r, c));
    }
  }
  Graph d1 = DiffusionGraph(g, opts);
  Graph d2 = DiffusionGraph(g, opts);
  EXPECT_EQ(d1.row_ptr, d2.row_ptr);
  EXPECT_EQ(d1.col, d2.col);
}

// --- View generator: deterministic subgraphs. ------------------------

TEST(HashOrder, PerNodeViewIsBitIdenticalAcrossRuns) {
  Graph g = GenerateErdosRenyi(80, 0.07, 16, 21);
  ViewGenerator gen(g, /*beta=*/0.7f);
  ViewConfig config;
  for (std::int64_t root : {0, 11, 37}) {
    Rng rng1(5), rng2(5);
    std::int64_t idx1 = -1, idx2 = -1;
    std::vector<std::int64_t> nodes1, nodes2;
    Graph v1 = gen.GeneratePerNodeView(root, 2, config, rng1, &idx1, &nodes1);
    Graph v2 = gen.GeneratePerNodeView(root, 2, config, rng2, &idx2, &nodes2);
    EXPECT_EQ(idx1, idx2);
    EXPECT_EQ(nodes1, nodes2);
    EXPECT_EQ(v1.row_ptr, v2.row_ptr);
    EXPECT_EQ(v1.col, v2.col);
    ASSERT_EQ(v1.features.rows(), v2.features.rows());
    for (std::int64_t r = 0; r < v1.features.rows(); ++r) {
      for (std::int64_t c = 0; c < v1.features.cols(); ++c) {
        ASSERT_EQ(v1.features(r, c), v2.features(r, c));
      }
    }
    // The subgraph's node list is strictly sorted: output order comes
    // from node ids, never from unordered_set bucket order.
    EXPECT_TRUE(std::is_sorted(nodes1.begin(), nodes1.end()));
    for (std::size_t i = 1; i < nodes1.size(); ++i) {
      EXPECT_LT(nodes1[i - 1], nodes1[i]);
    }
  }
}

TEST(HashOrder, GlobalViewIsBitIdenticalAcrossRuns) {
  Graph g = GenerateErdosRenyi(60, 0.08, 8, 31);
  ViewGenerator gen(g, 0.7f);
  ViewConfig config;
  Rng rng1(9), rng2(9);
  Graph v1 = gen.GenerateGlobalView(config, rng1);
  Graph v2 = gen.GenerateGlobalView(config, rng2);
  EXPECT_EQ(v1.row_ptr, v2.row_ptr);
  EXPECT_EQ(v1.col, v2.col);
}

}  // namespace
}  // namespace e2gcl
