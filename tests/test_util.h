#ifndef E2GCL_TESTS_TEST_UTIL_H_
#define E2GCL_TESTS_TEST_UTIL_H_

#include <cmath>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "autograd/variable.h"
#include "graph/graph.h"
#include "tensor/matrix.h"
#include "tensor/rng.h"

namespace e2gcl {
namespace testing_util {

/// Checks the analytic gradient of a scalar-valued function of `params`
/// against central finite differences. `build` must construct the loss
/// graph from the given parameter Vars (fresh tape per call).
inline void CheckGradients(
    std::vector<Matrix> values,
    const std::function<Var(const std::vector<Var>&)>& build,
    float h = 1e-3f, float tol = 2e-2f) {
  // Analytic gradients.
  std::vector<Var> params;
  params.reserve(values.size());
  for (const Matrix& v : values) params.push_back(Var::Param(v));
  Var loss = build(params);
  ASSERT_EQ(loss.rows(), 1);
  ASSERT_EQ(loss.cols(), 1);
  loss.Backward();
  std::vector<Matrix> analytic;
  for (const Var& p : params) {
    ASSERT_FALSE(p.grad().empty()) << "no gradient reached a parameter";
    analytic.push_back(p.grad());
  }

  // Numeric gradients.
  auto eval = [&](const std::vector<Matrix>& vals) {
    std::vector<Var> ps;
    for (const Matrix& v : vals) ps.push_back(Var::Param(v));
    return build(ps).value()(0, 0);
  };
  for (std::size_t pi = 0; pi < values.size(); ++pi) {
    for (std::int64_t i = 0; i < values[pi].size(); ++i) {
      std::vector<Matrix> plus = values;
      std::vector<Matrix> minus = values;
      plus[pi].data()[i] += h;
      minus[pi].data()[i] -= h;
      const float numeric = (eval(plus) - eval(minus)) / (2.0f * h);
      const float exact = analytic[pi].data()[i];
      const float scale = std::max({1.0f, std::fabs(numeric),
                                    std::fabs(exact)});
      EXPECT_NEAR(exact, numeric, tol * scale)
          << "param " << pi << " entry " << i;
    }
  }
}

/// A small deterministic test graph: two triangles joined by a bridge,
/// with 4-dim features and 2 classes.
inline Graph SmallGraph() {
  // 0-1-2 triangle, 3-4-5 triangle, bridge 2-3.
  std::vector<std::pair<std::int64_t, std::int64_t>> edges = {
      {0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}, {2, 3}};
  Matrix x = Matrix::FromRows({{1, 0, 0.5, 0},
                               {1, 0, 0.2, 0},
                               {1, 0, 0.1, 0.1},
                               {0, 1, 0, 0.3},
                               {0, 1, 0, 0.6},
                               {0, 1, 0.1, 0.4}});
  return BuildGraph(6, edges, std::move(x), {0, 0, 0, 1, 1, 1}, 2);
}

}  // namespace testing_util
}  // namespace e2gcl

#endif  // E2GCL_TESTS_TEST_UTIL_H_
