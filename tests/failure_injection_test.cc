// Failure-injection tests: precondition violations must abort loudly
// (E2GCL_CHECK), never corrupt memory or return garbage silently.

#include <gtest/gtest.h>

#include "autograd/loss.h"
#include "autograd/ops.h"
#include "core/node_selector.h"
#include "core/raw_aggregation.h"
#include "eval/linear_probe.h"
#include "graph/generators.h"
#include "nn/gcn.h"
#include "test_util.h"

namespace e2gcl {
namespace {

using testing_util::SmallGraph;

// The process owns a live worker thread pool (src/parallel), so the
// default "fast" death-test style — fork() straight out of a
// multi-threaded parent — is unsafe. "threadsafe" re-executes the test
// binary instead.
const int kDeathTestStyle = []() {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  return 0;
}();

TEST(MatrixDeath, MatMulShapeMismatchAborts) {
  Matrix a(2, 3), b(4, 2);
  EXPECT_DEATH(MatMul(a, b), "matmul inner-dim mismatch");
}

TEST(MatrixDeath, ElementwiseShapeMismatchAborts) {
  Matrix a(2, 3), b(3, 2);
  EXPECT_DEATH(Add(a, b), "shape mismatch");
  EXPECT_DEATH(Hadamard(a, b), "shape mismatch");
}

TEST(MatrixDeath, GatherRowsOutOfRangeAborts) {
  Matrix a(3, 2);
  EXPECT_DEATH(GatherRows(a, {0, 5}), "");
}

TEST(CsrDeath, OutOfBoundsTripletAborts) {
  EXPECT_DEATH(CsrMatrix::FromCoo(2, 2, {{0, 5, 1.0f}}), "out of bounds");
}

TEST(CsrDeath, SpmmShapeMismatchAborts) {
  CsrMatrix a = CsrMatrix::FromCoo(2, 3, {{0, 0, 1.0f}});
  Matrix b(5, 2);
  EXPECT_DEATH(Spmm(a, b), "spmm inner-dim mismatch");
}

TEST(AutogradDeath, BackwardFromNonScalarAborts) {
  Var p = Var::Param(Matrix(2, 2, 1.0f));
  EXPECT_DEATH(p.Backward(), "must start from a scalar");
}

TEST(AutogradDeath, LogOfNonPositiveAborts) {
  Var p = Var::Param(Matrix(1, 1, -1.0f));
  EXPECT_DEATH(ag::Log(p), "Log of non-positive");
}

TEST(AutogradDeath, CrossEntropyLabelOutOfRangeAborts) {
  Var logits = Var::Param(Matrix(2, 3, 0.0f));
  EXPECT_DEATH(ag::SoftmaxCrossEntropy(logits, {0, 7}), "");
}

TEST(AutogradDeath, InfoNceShapeMismatchAborts) {
  Var a = Var::Param(Matrix(4, 3, 0.5f));
  Var b = Var::Param(Matrix(3, 3, 0.5f));
  EXPECT_DEATH(ag::InfoNce(a, b, 0.5f), "");
}

TEST(GraphDeath, EdgeOutOfRangeAborts) {
  EXPECT_DEATH(BuildGraph(2, {{0, 5}}), "out of range");
}

TEST(GraphDeath, FeatureRowMismatchAborts) {
  EXPECT_DEATH(BuildGraph(3, {{0, 1}}, Matrix(2, 4)), "");
}

TEST(GraphDeath, UnsortedSubgraphNodesAbort) {
  Graph g = SmallGraph();
  EXPECT_DEATH(InducedSubgraph(g, {3, 1}), "sorted unique");
}

TEST(SelectorDeath, ZeroBudgetAborts) {
  Graph g = SmallGraph();
  Matrix r = RawAggregation(g, 1);
  SelectorConfig cfg;
  cfg.budget = 0;
  Rng rng(1);
  EXPECT_DEATH(SelectCoreset(r, cfg, rng), "");
}

TEST(SelectorDeath, BudgetAboveNodesAborts) {
  Graph g = SmallGraph();
  Matrix r = RawAggregation(g, 1);
  SelectorConfig cfg;
  cfg.budget = 100;
  Rng rng(1);
  EXPECT_DEATH(SelectCoreset(r, cfg, rng), "");
}

TEST(GeneratorDeath, FeatureDimSmallerThanSignalAborts) {
  SbmSpec spec;
  spec.num_classes = 8;
  spec.feature_dim = 8;
  spec.informative_dims_per_class = 8;
  EXPECT_DEATH(GenerateSbm(spec, 1), "");
}

TEST(ProbeDeath, EmptyTrainSplitAborts) {
  Matrix emb(10, 4);
  std::vector<std::int64_t> labels(10, 0);
  NodeSplit split;  // everything empty
  split.test = {0, 1};
  EXPECT_DEATH(LinearProbeAccuracy(emb, labels, 2, split), "");
}

TEST(GcnDeath, SingleDimConfigAborts) {
  Rng rng(1);
  GcnConfig cfg;
  cfg.dims = {16};
  EXPECT_DEATH(GcnEncoder(cfg, rng), "");
}

// Degenerate-but-valid inputs must NOT abort.
TEST(DegenerateInputs, EdgelessGraphWorksEndToEnd) {
  Graph g = BuildGraph(5, {}, Matrix(5, 4, 0.5f), {0, 1, 0, 1, 0}, 2);
  EXPECT_EQ(g.num_edges(), 0);
  Matrix r = RawAggregation(g, 2);  // self-loops only
  EXPECT_EQ(r.rows(), 5);
  Rng rng(2);
  GcnConfig cfg;
  cfg.dims = {4, 3};
  GcnEncoder enc(cfg, rng);
  Matrix h = enc.Encode(g);
  EXPECT_EQ(h.rows(), 5);
}

TEST(DegenerateInputs, SingleClassGraphWorks) {
  SbmSpec spec;
  spec.num_nodes = 40;
  spec.num_classes = 1;
  spec.feature_dim = 8;
  spec.informative_dims_per_class = 4;
  Graph g = GenerateSbm(spec, 3);
  EXPECT_EQ(g.num_classes, 1);
  for (std::int64_t y : g.labels) EXPECT_EQ(y, 0);
}

}  // namespace
}  // namespace e2gcl
