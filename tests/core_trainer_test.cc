#include <gtest/gtest.h>

#include "core/contrastive.h"
#include "core/trainer.h"
#include "graph/generators.h"
#include "graph/splits.h"
#include "eval/linear_probe.h"
#include "test_util.h"

namespace e2gcl {
namespace {


Graph TrainerGraph(std::uint64_t seed = 1) {
  SbmSpec spec;
  spec.num_nodes = 300;
  spec.num_classes = 3;
  spec.feature_dim = 36;
  spec.avg_degree = 8;
  spec.informative_dims_per_class = 8;
  return GenerateSbm(spec, seed);
}

E2gclConfig FastConfig() {
  E2gclConfig cfg;
  cfg.epochs = 8;
  cfg.hidden_dim = 24;
  cfg.embed_dim = 16;
  cfg.batch_size = 128;
  cfg.selector.num_clusters = 8;
  cfg.selector.sample_size = 32;
  cfg.selector.auto_sample_size = false;
  return cfg;
}

TEST(SampleNegativePermutation, NoFixedPoints) {
  Rng rng(1);
  for (std::int64_t n : {2, 3, 5, 17, 100}) {
    auto perm = SampleNegativePermutation(n, rng);
    ASSERT_EQ(static_cast<std::int64_t>(perm.size()), n);
    std::vector<char> seen(n, 0);
    for (std::int64_t i = 0; i < n; ++i) {
      EXPECT_NE(perm[i], i);
      seen[perm[i]] = 1;
    }
    for (char s : seen) EXPECT_TRUE(s);  // still a permutation
  }
}

TEST(ComputeContrastiveLoss, BothKindsFinite) {
  Rng rng(2);
  Var z1 = Var::Param(Matrix::RandomNormal(10, 8, 0, 1, rng));
  Var z2 = Var::Param(Matrix::RandomNormal(10, 8, 0, 1, rng));
  Rng loss_rng(3);
  Var nce = ComputeContrastiveLoss(ContrastiveLossKind::kInfoNce, z1, z2,
                                   0.5f, loss_rng);
  Var euc = ComputeContrastiveLoss(ContrastiveLossKind::kEuclidean, z1, z2,
                                   0.5f, loss_rng);
  EXPECT_TRUE(std::isfinite(nce.value()(0, 0)));
  EXPECT_TRUE(std::isfinite(euc.value()(0, 0)));
}

TEST(E2gclTrainer, RunsAndReportsStats) {
  Graph g = TrainerGraph();
  E2gclTrainer trainer(g, FastConfig());
  trainer.Train();
  const E2gclStats& s = trainer.stats();
  EXPECT_EQ(s.epochs_run, 8);
  EXPECT_GT(s.total_seconds, 0.0);
  EXPECT_GT(s.selection_seconds, 0.0);
  EXPECT_GE(s.total_seconds, s.selection_seconds);
  EXPECT_GT(s.view_seconds, 0.0);
}

TEST(E2gclTrainer, SelectionRespectsNodeRatio) {
  Graph g = TrainerGraph();
  E2gclConfig cfg = FastConfig();
  cfg.node_ratio = 0.2;
  E2gclTrainer trainer(g, cfg);
  trainer.Train();
  EXPECT_EQ(trainer.selection().nodes.size(), 60u);
}

TEST(E2gclTrainer, NoSelectorSkipsSelection) {
  Graph g = TrainerGraph();
  E2gclConfig cfg = FastConfig();
  cfg.use_selector = false;
  E2gclTrainer trainer(g, cfg);
  trainer.Train();
  EXPECT_TRUE(trainer.selection().nodes.empty());
  EXPECT_EQ(trainer.stats().selection_seconds, 0.0);
}

TEST(E2gclTrainer, EmbeddingFiniteAndShaped) {
  Graph g = TrainerGraph();
  E2gclTrainer trainer(g, FastConfig());
  trainer.Train();
  Matrix emb = trainer.encoder().Encode(g);
  EXPECT_EQ(emb.rows(), g.num_nodes);
  EXPECT_EQ(emb.cols(), 16);
  EXPECT_TRUE(AllFinite(emb));
}

TEST(E2gclTrainer, CallbackInvokedPerEpoch) {
  Graph g = TrainerGraph();
  int calls = 0;
  double last_seconds = -1.0;
  E2gclTrainer trainer(g, FastConfig());
  trainer.Train([&](int epoch, double seconds, const GcnEncoder&) {
    EXPECT_EQ(epoch, calls);
    EXPECT_GT(seconds, last_seconds);
    last_seconds = seconds;
    ++calls;
  });
  EXPECT_EQ(calls, 8);
}

TEST(E2gclTrainer, PretrainingImprovesLinearProbe) {
  Graph g = TrainerGraph(42);
  E2gclConfig cfg = FastConfig();
  cfg.epochs = 30;
  E2gclTrainer trainer(g, cfg);

  Rng split_rng(5);
  NodeSplit split = RandomNodeSplit(g.num_nodes, 0.1, 0.1, split_rng);
  Matrix before = trainer.encoder().Encode(g);
  const double acc_before =
      LinearProbeAccuracy(before, g.labels, g.num_classes, split);
  trainer.Train();
  Matrix after = trainer.encoder().Encode(g);
  const double acc_after =
      LinearProbeAccuracy(after, g.labels, g.num_classes, split);
  // Pre-training must help vs a random-weight encoder.
  EXPECT_GT(acc_after, acc_before - 0.02);
  EXPECT_GT(acc_after, 1.0 / 3.0 + 0.15);  // clearly above chance
}

TEST(E2gclTrainer, EuclideanLossVariantRuns) {
  Graph g = TrainerGraph();
  E2gclConfig cfg = FastConfig();
  cfg.loss = ContrastiveLossKind::kEuclidean;
  cfg.projection_head = false;
  E2gclTrainer trainer(g, cfg);
  trainer.Train();
  EXPECT_TRUE(AllFinite(trainer.encoder().Encode(g)));
}

TEST(E2gclTrainer, DeterministicGivenSeed) {
  Graph g = TrainerGraph();
  E2gclConfig cfg = FastConfig();
  cfg.epochs = 3;
  E2gclTrainer a(g, cfg), b(g, cfg);
  a.Train();
  b.Train();
  EXPECT_LT(MaxAbsDiff(a.encoder().Encode(g), b.encoder().Encode(g)), 1e-6f);
}

TEST(E2gclTrainer, AblationVariantsRun) {
  Graph g = TrainerGraph();
  for (const bool selector : {true, false}) {
    for (const bool importance : {true, false}) {
      E2gclConfig cfg = FastConfig();
      cfg.epochs = 3;
      cfg.use_selector = selector;
      cfg.view_hat.importance_edges = importance;
      cfg.view_hat.importance_features = importance;
      cfg.view_tilde.importance_edges = importance;
      cfg.view_tilde.importance_features = importance;
      E2gclTrainer trainer(g, cfg);
      trainer.Train();
      EXPECT_TRUE(AllFinite(trainer.encoder().Encode(g)));
    }
  }
}

}  // namespace
}  // namespace e2gcl
