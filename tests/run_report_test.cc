// Run-report schema tests: golden-schema round-trip through
// SaveRunReport/LoadRunReport, rejection of unknown versions and corrupt
// files, and the determinism contract — two identically seeded training
// runs produce identical counter snapshots (timings excluded).

#include <gtest/gtest.h>
#include <unistd.h>

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/trainer.h"
#include "graph/generators.h"
#include "obs/metrics.h"
#include "obs/run_report.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"

namespace e2gcl {
namespace {

namespace fs = std::filesystem;

Graph ReportGraph(std::uint64_t seed = 1) {
  SbmSpec spec;
  spec.num_nodes = 100;
  spec.num_classes = 3;
  spec.feature_dim = 16;
  spec.avg_degree = 6;
  spec.informative_dims_per_class = 4;
  return GenerateSbm(spec, seed);
}

E2gclConfig ReportConfig() {
  E2gclConfig cfg;
  cfg.epochs = 4;
  cfg.hidden_dim = 12;
  cfg.embed_dim = 8;
  cfg.batch_size = 48;
  cfg.selector.num_clusters = 6;
  cfg.selector.sample_size = 24;
  cfg.selector.auto_sample_size = false;
  return cfg;
}

/// A report exercising every schema-v1 field with non-default values.
RunReport GoldenReport() {
  RunReport r;
  r.config_fingerprint = "00ff00ff00ff00ff";
  r.seed = 0xDEADBEEFULL;
  r.threads = 7;
  r.status = "diverged";
  r.resumed = true;
  r.start_epoch = 3;
  r.retries_used = 2;
  r.selection_seconds = 0.125;
  r.total_seconds = 1.5;
  RunReport::Epoch e;
  e.epoch = 3;
  e.loss = 0.6931471805599453;
  e.view_seconds = 0.01;
  e.loss_seconds = 0.02;
  e.step_seconds = 0.03;
  e.checkpoint_seconds = 0.04;
  e.counters = {{"a.calls", 1}, {"b.calls", 2}};
  r.epochs.push_back(e);
  r.events.push_back({"retry", 3, "non-finite loss"});
  r.metrics.counters = {{"a.calls", 1}, {"b.calls", 2}};
  r.metrics.gauges = {{"queue.depth", -4}};
  HistogramSnapshot h;
  h.name = "chunks";
  h.bounds = {1, 8, 64};
  h.counts = {5, 0, 2, 1};
  h.total = 8;
  r.metrics.histograms.push_back(h);
  r.spans.push_back({"epoch", 4, 0.9});
  r.spans.push_back({"epoch/generate_view", 8, 0.2});
  return r;
}

class RunReportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetObsEnabled(true);
    MetricsRegistry::Get().ResetValuesForTest();
    TraceRegistry::Get().ResetValuesForTest();
    dir_ = (fs::temp_directory_path() /
            ("e2gcl_report_test_" + std::to_string(::getpid())))
               .string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string WriteFile(const std::string& name, const std::string& text) {
    const std::string path = dir_ + "/" + name;
    std::ofstream out(path);
    out << text;
    return path;
  }

  std::string ReadFile(const std::string& path) {
    std::ifstream in(path);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  }

  std::string dir_;
};

// ---------------------------------------------------------------------------
// Schema round-trip and rejection.
// ---------------------------------------------------------------------------

TEST_F(RunReportTest, GoldenSchemaRoundTripIsExact) {
  const RunReport golden = GoldenReport();
  const std::string path = dir_ + "/golden.json";
  ASSERT_TRUE(SaveRunReport(path, golden));

  RunReport loaded;
  std::string error;
  ASSERT_TRUE(LoadRunReport(path, &loaded, &error)) << error;
  EXPECT_EQ(loaded.config_fingerprint, golden.config_fingerprint);
  EXPECT_EQ(loaded.seed, golden.seed);
  EXPECT_EQ(loaded.threads, golden.threads);
  EXPECT_EQ(loaded.status, golden.status);
  EXPECT_EQ(loaded.resumed, golden.resumed);
  EXPECT_EQ(loaded.start_epoch, golden.start_epoch);
  EXPECT_EQ(loaded.retries_used, golden.retries_used);
  EXPECT_EQ(loaded.selection_seconds, golden.selection_seconds);
  EXPECT_EQ(loaded.total_seconds, golden.total_seconds);
  ASSERT_EQ(loaded.epochs.size(), 1u);
  EXPECT_EQ(loaded.epochs[0].epoch, golden.epochs[0].epoch);
  EXPECT_EQ(loaded.epochs[0].loss, golden.epochs[0].loss);  // %.17g exact
  EXPECT_EQ(loaded.epochs[0].view_seconds, golden.epochs[0].view_seconds);
  EXPECT_EQ(loaded.epochs[0].loss_seconds, golden.epochs[0].loss_seconds);
  EXPECT_EQ(loaded.epochs[0].step_seconds, golden.epochs[0].step_seconds);
  EXPECT_EQ(loaded.epochs[0].checkpoint_seconds,
            golden.epochs[0].checkpoint_seconds);
  EXPECT_EQ(loaded.epochs[0].counters, golden.epochs[0].counters);
  ASSERT_EQ(loaded.events.size(), 1u);
  EXPECT_EQ(loaded.events[0].kind, "retry");
  EXPECT_EQ(loaded.events[0].epoch, 3);
  EXPECT_EQ(loaded.events[0].detail, "non-finite loss");
  EXPECT_EQ(loaded.metrics.counters, golden.metrics.counters);
  EXPECT_EQ(loaded.metrics.gauges, golden.metrics.gauges);
  ASSERT_EQ(loaded.metrics.histograms.size(), 1u);
  EXPECT_EQ(loaded.metrics.histograms[0].name, "chunks");
  EXPECT_EQ(loaded.metrics.histograms[0].bounds,
            golden.metrics.histograms[0].bounds);
  EXPECT_EQ(loaded.metrics.histograms[0].counts,
            golden.metrics.histograms[0].counts);
  EXPECT_EQ(loaded.metrics.histograms[0].total,
            golden.metrics.histograms[0].total);
  ASSERT_EQ(loaded.spans.size(), 2u);
  EXPECT_EQ(loaded.spans[1].path, "epoch/generate_view");
  EXPECT_EQ(loaded.spans[1].count, 8u);
  EXPECT_EQ(loaded.spans[1].seconds, 0.2);

  // A second save of the loaded report is byte-identical: the schema has
  // no lossy fields.
  const std::string path2 = dir_ + "/golden2.json";
  ASSERT_TRUE(SaveRunReport(path2, loaded));
  EXPECT_EQ(ReadFile(path), ReadFile(path2));
}

TEST_F(RunReportTest, RejectsUnknownVersion) {
  const std::string path = dir_ + "/versioned.json";
  ASSERT_TRUE(SaveRunReport(path, GoldenReport()));
  std::string text = ReadFile(path);
  const std::string::size_type at = text.find("\"version\": 1");
  ASSERT_NE(at, std::string::npos);
  text.replace(at, std::strlen("\"version\": 1"), "\"version\": 99");
  RunReport out;
  std::string error;
  EXPECT_FALSE(
      LoadRunReport(WriteFile("v99.json", text), &out, &error));
  EXPECT_NE(error.find("version"), std::string::npos);
}

TEST_F(RunReportTest, RejectsWrongSchemaTag) {
  RunReport out;
  std::string error;
  EXPECT_FALSE(LoadRunReport(
      WriteFile("tag.json", "{\"schema\": \"other.thing\", \"version\": 1}"),
      &out, &error));
  EXPECT_NE(error.find("schema"), std::string::npos);
}

TEST_F(RunReportTest, RejectsCorruptAndMissingFiles) {
  RunReport out;
  std::string error;
  EXPECT_FALSE(LoadRunReport(WriteFile("corrupt.json", "{ not json !"),
                             &out, &error));
  EXPECT_FALSE(error.empty());
  error.clear();
  EXPECT_FALSE(LoadRunReport(dir_ + "/does_not_exist.json", &out, &error));
  EXPECT_FALSE(error.empty());
  // Truncated mid-structure.
  const std::string path = dir_ + "/trunc.json";
  ASSERT_TRUE(SaveRunReport(path, GoldenReport()));
  const std::string text = ReadFile(path);
  EXPECT_FALSE(LoadRunReport(
      WriteFile("trunc2.json", text.substr(0, text.size() / 2)), &out,
      nullptr));
}

TEST_F(RunReportTest, RejectsMalformedHistogram) {
  // counts must be exactly bounds.size() + 1.
  EXPECT_FALSE(LoadRunReport(
      WriteFile("hist.json",
                "{\"schema\": \"e2gcl.run_report\", \"version\": 1,\n"
                "\"config_fingerprint\": \"0000000000000000\", \"seed\": 1,\n"
                "\"threads\": 1, \"status\": \"ok\", \"resumed\": false,\n"
                "\"start_epoch\": 0, \"retries_used\": 0,\n"
                "\"selection_seconds\": 0, \"total_seconds\": 0,\n"
                "\"epochs\": [], \"events\": [], \"counters\": {},\n"
                "\"gauges\": {},\n"
                "\"histograms\": {\"h\": {\"bounds\": [1, 2],"
                " \"counts\": [1, 2]}},\n"
                "\"spans\": []}"),
      nullptr, nullptr));
}

// ---------------------------------------------------------------------------
// Reports emitted by real training runs.
// ---------------------------------------------------------------------------

TEST_F(RunReportTest, TrainEmitsValidReport) {
  Graph g = ReportGraph();
  E2gclConfig cfg = ReportConfig();
  cfg.report_path = dir_ + "/run_report.json";
  E2gclTrainer trainer(g, cfg);
  ASSERT_TRUE(trainer.Train().ok());

  RunReport report;
  std::string error;
  ASSERT_TRUE(LoadRunReport(cfg.report_path, &report, &error)) << error;
  EXPECT_EQ(report.status, "ok");
  EXPECT_EQ(report.seed, cfg.seed);
  EXPECT_EQ(report.threads, GetNumThreads());
  EXPECT_FALSE(report.resumed);
  EXPECT_EQ(report.start_epoch, 0);
  EXPECT_EQ(report.retries_used, 0);
  ASSERT_EQ(report.config_fingerprint.size(), 16u);
  for (const char ch : report.config_fingerprint) {
    EXPECT_TRUE(std::isxdigit(static_cast<unsigned char>(ch)));
  }
  EXPECT_GT(report.total_seconds, 0.0);

  ASSERT_EQ(report.epochs.size(), static_cast<std::size_t>(cfg.epochs));
  for (int i = 0; i < cfg.epochs; ++i) {
    EXPECT_EQ(report.epochs[i].epoch, i);
    EXPECT_TRUE(std::isfinite(report.epochs[i].loss));
    EXPECT_FALSE(report.epochs[i].counters.empty());
  }
  // Per-epoch counters are cumulative deltas from Train() entry, so each
  // named counter is monotone non-decreasing across epochs.
  for (std::size_t i = 1; i < report.epochs.size(); ++i) {
    const auto& prev = report.epochs[i - 1];
    for (const auto& kv : prev.counters) {
      std::uint64_t later = 0;
      for (const auto& kv2 : report.epochs[i].counters) {
        if (kv2.first == kv.first) later = kv2.second;
      }
      EXPECT_GE(later, kv.second) << kv.first;
    }
  }

  // Whole-run counters cover every instrumented subsystem the run used.
  EXPECT_EQ(report.metrics.counter("trainer.epochs"),
            static_cast<std::uint64_t>(cfg.epochs));
  EXPECT_GT(report.metrics.counter("viewgen.views"), 0u);
  EXPECT_GT(report.metrics.counter("kmeans.iterations"), 0u);
  EXPECT_GT(report.metrics.counter("selector.nodes_selected"), 0u);
  EXPECT_GT(report.metrics.counter("matmul.calls"), 0u);
  EXPECT_GT(report.metrics.counter("spmm.calls"), 0u);

  // The span tree records one "epoch" span per epoch with nested views.
  bool saw_epoch = false, saw_nested_view = false;
  for (const SpanSnapshot& s : report.spans) {
    if (s.path == "epoch") {
      saw_epoch = true;
      EXPECT_EQ(s.count, static_cast<std::uint64_t>(cfg.epochs));
    }
    if (s.path == "epoch/generate_view") saw_nested_view = true;
  }
  EXPECT_TRUE(saw_epoch);
  EXPECT_TRUE(saw_nested_view);
}

TEST_F(RunReportTest, IdenticalSeededRunsHaveIdenticalCounters) {
  Graph g = ReportGraph();
  E2gclConfig cfg = ReportConfig();

  cfg.report_path = dir_ + "/run1.json";
  {
    E2gclTrainer trainer(g, cfg);
    ASSERT_TRUE(trainer.Train().ok());
  }
  cfg.report_path = dir_ + "/run2.json";
  {
    E2gclTrainer trainer(g, cfg);
    ASSERT_TRUE(trainer.Train().ok());
  }

  RunReport r1, r2;
  ASSERT_TRUE(LoadRunReport(dir_ + "/run1.json", &r1));
  ASSERT_TRUE(LoadRunReport(dir_ + "/run2.json", &r2));

  // Counter snapshots — whole-run and per-epoch — are bit-identical;
  // losses too (the whole trajectory is deterministic). Timings, gauges,
  // and spans are wall-clock/scheduling-dependent and excluded.
  EXPECT_EQ(r1.metrics.counters, r2.metrics.counters);
  ASSERT_EQ(r1.epochs.size(), r2.epochs.size());
  for (std::size_t i = 0; i < r1.epochs.size(); ++i) {
    EXPECT_EQ(r1.epochs[i].counters, r2.epochs[i].counters) << "epoch " << i;
    EXPECT_EQ(r1.epochs[i].loss, r2.epochs[i].loss) << "epoch " << i;
  }
  EXPECT_EQ(r1.config_fingerprint, r2.config_fingerprint);
}

TEST_F(RunReportTest, ReportLandsNextToCheckpointsByDefault) {
  Graph g = ReportGraph();
  E2gclConfig cfg = ReportConfig();
  cfg.checkpoint_dir = dir_ + "/ckpts";
  cfg.checkpoint_every = 2;
  E2gclTrainer trainer(g, cfg);
  ASSERT_TRUE(trainer.Train().ok());

  RunReport report;
  std::string error;
  ASSERT_TRUE(
      LoadRunReport(cfg.checkpoint_dir + "/run_report.json", &report, &error))
      << error;
  EXPECT_EQ(report.status, "ok");
  EXPECT_GT(report.metrics.counter("checkpoint.writes"), 0u);
  EXPECT_GT(report.metrics.counter("checkpoint.bytes_written"), 0u);
}

TEST_F(RunReportTest, ObsOffStillWritesReportWithZeroCounters) {
  Graph g = ReportGraph();
  E2gclConfig cfg = ReportConfig();
  cfg.report_path = dir_ + "/off.json";
  SetObsEnabled(false);
  E2gclTrainer trainer(g, cfg);
  const bool ok = trainer.Train().ok();
  SetObsEnabled(true);
  ASSERT_TRUE(ok);

  RunReport report;
  ASSERT_TRUE(LoadRunReport(cfg.report_path, &report));
  EXPECT_EQ(report.status, "ok");
  EXPECT_GT(report.total_seconds, 0.0);  // timings still recorded
  for (const auto& kv : report.metrics.counters) {
    EXPECT_EQ(kv.second, 0u) << kv.first;
  }
  for (const SpanSnapshot& s : report.spans) {
    EXPECT_EQ(s.count, 0u) << s.path;
  }
}

}  // namespace
}  // namespace e2gcl
