#include "graph/graph.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace e2gcl {
namespace {

using testing_util::SmallGraph;

TEST(BuildGraph, SymmetrizesAndDedupes) {
  Graph g = BuildGraph(3, {{0, 1}, {1, 0}, {0, 1}, {1, 2}});
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_TRUE(g.HasEdge(1, 2));
  EXPECT_FALSE(g.HasEdge(0, 2));
}

TEST(BuildGraph, DropsSelfLoops) {
  Graph g = BuildGraph(2, {{0, 0}, {0, 1}, {1, 1}});
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_FALSE(g.HasEdge(0, 0));
}

TEST(BuildGraph, DegreesMatch) {
  Graph g = SmallGraph();
  EXPECT_EQ(g.Degree(0), 2);
  EXPECT_EQ(g.Degree(2), 3);  // triangle + bridge
  EXPECT_EQ(g.Degree(3), 3);
  EXPECT_EQ(g.num_nodes, 6);
  EXPECT_EQ(g.num_edges(), 7);
}

TEST(BuildGraph, NeighborsSorted) {
  Graph g = SmallGraph();
  auto nb = g.Neighbors(2);
  for (std::size_t i = 1; i < nb.size(); ++i) EXPECT_LT(nb[i - 1], nb[i]);
}

TEST(BuildGraph, IsolatedNodeHasNoNeighbors) {
  Graph g = BuildGraph(4, {{0, 1}});
  EXPECT_EQ(g.Degree(3), 0);
  EXPECT_TRUE(g.Neighbors(3).empty());
}

TEST(NormalizedAdjacency, EntriesMatchDefinition) {
  Graph g = SmallGraph();
  Matrix dense = NormalizedAdjacency(g).ToDense();
  // Entry (v, u) = 1 / sqrt((d_v + 1)(d_u + 1)) for edges (self-loop
  // counted in the degree), e.g. edge (0, 1): d_0 = d_1 = 2.
  EXPECT_NEAR(dense(0, 1), 1.0f / 3.0f, 1e-5f);
  // Bridge (2, 3): d_2 = d_3 = 3.
  EXPECT_NEAR(dense(2, 3), 1.0f / 4.0f, 1e-5f);
  // Row sums are positive and bounded by sqrt(max-degree ratio), not 1.
  for (std::int64_t r = 0; r < dense.rows(); ++r) {
    float sum = 0.0f;
    for (std::int64_t c = 0; c < dense.cols(); ++c) sum += dense(r, c);
    EXPECT_GT(sum, 0.0f);
    EXPECT_LT(sum, 2.0f);
  }
}

TEST(NormalizedAdjacency, SymmetricMatrix) {
  Graph g = SmallGraph();
  Matrix dense = NormalizedAdjacency(g).ToDense();
  EXPECT_LT(MaxAbsDiff(dense, Transpose(dense)), 1e-6f);
}

TEST(NormalizedAdjacency, SelfLoopOnDiagonal) {
  Graph g = SmallGraph();
  Matrix with = NormalizedAdjacency(g, /*add_self_loops=*/true).ToDense();
  Matrix without = NormalizedAdjacency(g, /*add_self_loops=*/false).ToDense();
  for (std::int64_t v = 0; v < g.num_nodes; ++v) {
    EXPECT_GT(with(v, v), 0.0f);
    EXPECT_EQ(without(v, v), 0.0f);
  }
}

TEST(NormalizedAdjacency, RegularGraphValues) {
  // A 4-cycle is 2-regular: with self-loops every entry is 1/3.
  Graph g = BuildGraph(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  Matrix d = NormalizedAdjacency(g).ToDense();
  EXPECT_NEAR(d(0, 0), 1.0f / 3.0f, 1e-5f);
  EXPECT_NEAR(d(0, 1), 1.0f / 3.0f, 1e-5f);
  EXPECT_EQ(d(0, 2), 0.0f);
}

TEST(RowNormalizedAdjacency, RowsSumToOne) {
  Graph g = SmallGraph();
  Matrix d = RowNormalizedAdjacency(g).ToDense();
  for (std::int64_t r = 0; r < d.rows(); ++r) {
    float sum = 0.0f;
    for (std::int64_t c = 0; c < d.cols(); ++c) sum += d(r, c);
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(KHopNeighborhood, ZeroHopsIsSelf) {
  Graph g = SmallGraph();
  EXPECT_EQ(KHopNeighborhood(g, 0, 0), (std::vector<std::int64_t>{0}));
}

TEST(KHopNeighborhood, OneAndTwoHops) {
  Graph g = SmallGraph();
  EXPECT_EQ(KHopNeighborhood(g, 0, 1), (std::vector<std::int64_t>{0, 1, 2}));
  EXPECT_EQ(KHopNeighborhood(g, 0, 2),
            (std::vector<std::int64_t>{0, 1, 2, 3}));
  EXPECT_EQ(KHopNeighborhood(g, 0, 3),
            (std::vector<std::int64_t>{0, 1, 2, 3, 4, 5}));
}

TEST(InducedSubgraph, KeepsInternalEdgesOnly) {
  Graph g = SmallGraph();
  Graph sub = InducedSubgraph(g, {0, 1, 2, 3});
  EXPECT_EQ(sub.num_nodes, 4);
  EXPECT_EQ(sub.num_edges(), 4);  // triangle 0-1-2 + bridge 2-3
  EXPECT_TRUE(sub.HasEdge(2, 3));
  EXPECT_EQ(sub.labels[3], 1);
  EXPECT_FLOAT_EQ(sub.features(3, 1), 1.0f);
}

TEST(InducedSubgraph, RemapReported) {
  Graph g = SmallGraph();
  std::vector<std::pair<std::int64_t, std::int64_t>> remap;
  Graph sub = InducedSubgraph(g, {2, 4, 5}, &remap);
  EXPECT_EQ(remap.size(), 3u);
  EXPECT_EQ(remap[0], (std::pair<std::int64_t, std::int64_t>{2, 0}));
  EXPECT_EQ(remap[1], (std::pair<std::int64_t, std::int64_t>{4, 1}));
  EXPECT_TRUE(sub.HasEdge(1, 2));   // 4-5 edge survives
  EXPECT_EQ(sub.num_edges(), 1);    // 2 is not adjacent to 4 or 5
}

TEST(DegreeCentrality, LogDegreePlusOne) {
  Graph g = SmallGraph();
  auto c = DegreeCentrality(g);
  EXPECT_NEAR(c[0], std::log(3.0f), 1e-5f);
  EXPECT_NEAR(c[2], std::log(4.0f), 1e-5f);
}

TEST(UndirectedEdges, EachEdgeOnce) {
  Graph g = SmallGraph();
  auto edges = UndirectedEdges(g);
  EXPECT_EQ(edges.size(), 7u);
  for (const auto& [u, v] : edges) EXPECT_LT(u, v);
}

TEST(TwoHopCandidates, ExcludesSelfIncludesBothHops) {
  Graph g = SmallGraph();
  auto cand = TwoHopCandidates(g, 0);
  // 1-hop: {1, 2}; 2-hop via them: {0->excl, 1, 2, 3}.
  EXPECT_EQ(cand, (std::vector<std::int64_t>{1, 2, 3}));
}

TEST(AverageDegree, MatchesFormula) {
  Graph g = SmallGraph();
  EXPECT_NEAR(g.AverageDegree(), 2.0 * 7 / 6, 1e-9);
}

// Node ids are stored as int32 adjacency columns. A node count whose
// ids cannot round-trip through that type must be rejected up front
// (PR 5 guarded only CsrMatrix::FromCoo, not BuildGraph), not silently
// narrowed into negative column ids.
TEST(BuildGraph, RejectsNodeCountsBeyondInt32IdRange) {
  const std::int64_t too_many = (std::int64_t{1} << 31) + 1;
  EXPECT_DEATH(BuildGraph(too_many, {{0, too_many - 1}}), "int32");
}

}  // namespace
}  // namespace e2gcl
