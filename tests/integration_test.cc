// Cross-module integration tests: small-scale versions of the paper's
// experimental claims that are stable enough to assert in CI.

#include <gtest/gtest.h>

#include "baselines/selectors.h"
#include "core/raw_aggregation.h"
#include "core/trainer.h"
#include "eval/linear_probe.h"
#include "eval/protocol.h"
#include "graph/generators.h"
#include "test_util.h"

namespace e2gcl {
namespace {

/// A moderately hard GNN-dependent graph: part of the nodes carry no
/// feature signal of their own.
Graph HardGraph(std::uint64_t seed) {
  SbmSpec spec;
  spec.num_nodes = 500;
  spec.num_classes = 4;
  spec.feature_dim = 48;
  spec.avg_degree = 8;
  spec.informative_dims_per_class = 8;
  spec.signal_leak = 0.15;
  spec.noise_density = 0.15;
  spec.feature_missing_rate = 0.5;
  return GenerateSbm(spec, seed);
}

RunConfig FastConfig() {
  RunConfig cfg;
  cfg.epochs = 25;
  cfg.supervised.epochs = 80;
  cfg.probe.epochs = 80;
  cfg.e2gcl.selector.num_clusters = 16;
  cfg.e2gcl.batch_size = 256;
  cfg.grace.batch_size = 256;
  return cfg;
}

double MeanAccuracy(ModelKind kind, const Graph& g, const RunConfig& base,
                    int runs = 2) {
  return RunRepeated(kind, g, base, runs).accuracy.mean;
}

TEST(Integration, GclModelsBeatRawFeatureMlp) {
  Graph g = HardGraph(1);
  RunConfig cfg = FastConfig();
  const double mlp = MeanAccuracy(ModelKind::kMlp, g, cfg);
  const double e2gcl = MeanAccuracy(ModelKind::kE2gcl, g, cfg);
  // Half the nodes have no own feature signal: the GCL embedding must
  // clearly beat a feature-only classifier.
  EXPECT_GT(e2gcl, mlp + 10.0);
}

TEST(Integration, E2gclCompetitiveWithGrace) {
  Graph g = HardGraph(2);
  RunConfig cfg = FastConfig();
  const double grace = MeanAccuracy(ModelKind::kGrace, g, cfg);
  const double e2gcl = MeanAccuracy(ModelKind::kE2gcl, g, cfg);
  // Table IV shape at test scale: E2GCL at least matches GRACE.
  EXPECT_GT(e2gcl, grace - 2.0);
}

TEST(Integration, CoresetTrainingMatchesFullTraining) {
  Graph g = HardGraph(3);
  RunConfig cfg = FastConfig();
  RunConfig all = cfg;
  all.e2gcl.use_selector = false;
  const double with_coreset = MeanAccuracy(ModelKind::kE2gcl, g, cfg);
  const double with_all = MeanAccuracy(ModelKind::kE2gcl, g, all);
  // Table VI shape: 40% coreset within a few points of all-node training.
  EXPECT_GT(with_coreset, with_all - 5.0);
}

TEST(Integration, SelectorObjectiveOrderingOursBelowRandom) {
  Graph g = HardGraph(4);
  Matrix r = RawAggregation(g, 2);
  SelectorConfig cfg;
  cfg.num_clusters = 16;
  cfg.sample_size = 48;
  cfg.auto_sample_size = false;
  Rng rng1(5), rng2(5);
  SelectionResult ours =
      SelectNodes(SelectorKind::kE2gcl, g, r, 100, cfg, rng1);
  SelectionResult random =
      SelectNodes(SelectorKind::kRandom, g, r, 100, cfg, rng2);
  // Representativity objective: smaller is better. (The two results use
  // slightly different metrics internally, so compare with the shared
  // oracle.)
  KMeansOptions km_opts;
  km_opts.num_clusters = 16;
  Rng km_rng(6);
  KMeansResult km = KMeans(r, km_opts, km_rng);
  EXPECT_LT(RepresentativityObjective(r, km, ours.nodes),
            RepresentativityObjective(r, km, random.nodes));
}

TEST(Integration, BudgetSweepFlatThenDrops) {
  // Fig. 4(a) shape: r = 0.5 is within a few points of r = 1.0, while
  // an extreme budget (r ~ 1/128) is clearly worse than r = 1.0.
  Graph g = HardGraph(7);
  RunConfig cfg = FastConfig();
  auto acc_at = [&](double ratio) {
    RunConfig c = cfg;
    c.e2gcl.node_ratio = ratio;
    return MeanAccuracy(ModelKind::kE2gcl, g, c, /*runs=*/3);
  };
  const double full = acc_at(1.0);
  const double half = acc_at(0.5);
  const double tiny = acc_at(1.0 / 128.0);
  EXPECT_GT(half, full - 6.0);
  // The drop at extreme budgets is mild at this scale (the propagation
  // prior already carries most of the signal); assert direction only.
  EXPECT_LT(tiny, full - 0.5);
}

TEST(Integration, SelectionTimeSmallFractionOfTotal) {
  Graph g = HardGraph(8);
  E2gclConfig cfg;
  cfg.epochs = 25;
  cfg.selector.num_clusters = 16;
  cfg.batch_size = 256;
  E2gclTrainer trainer(g, cfg);
  trainer.Train();
  // Table V shape: ST is a minor share of TT.
  EXPECT_LT(trainer.stats().selection_seconds,
            0.5 * trainer.stats().total_seconds);
}

TEST(Integration, DeterministicEndToEnd) {
  Graph g = HardGraph(9);
  RunConfig cfg = FastConfig();
  cfg.epochs = 6;
  RunResult a = RunNodeClassification(ModelKind::kE2gcl, g, cfg);
  RunResult b = RunNodeClassification(ModelKind::kE2gcl, g, cfg);
  EXPECT_DOUBLE_EQ(a.accuracy, b.accuracy);
}

}  // namespace
}  // namespace e2gcl
