#include <cstdio>
#include <memory>

#include <gtest/gtest.h>

#include "autograd/loss.h"
#include "eval/io.h"
#include "eval/projection.h"
#include "nn/gat.h"
#include "nn/optim.h"
#include "test_util.h"

namespace e2gcl {
namespace {

using testing_util::CheckGradients;
using testing_util::SmallGraph;

// --- GAT. --------------------------------------------------------------------

TEST(GatAdjacency, SelfLoopsIncluded) {
  Graph g = SmallGraph();
  GatAdjacency adj = GatAdjacency::FromGraph(g);
  for (std::int64_t v = 0; v < g.num_nodes; ++v) {
    const std::int64_t lo = adj.row_ptr[v];
    EXPECT_EQ(adj.col[lo], v);  // self first
    EXPECT_EQ(adj.row_ptr[v + 1] - lo, g.Degree(v) + 1);
  }
}

TEST(GatPropagate, AttentionRowsAreConvexCombinations) {
  // With uniform attention vectors set to zero, alpha is uniform and the
  // output equals the neighborhood mean (incl. self).
  Graph g = SmallGraph();
  auto adj = std::make_shared<const GatAdjacency>(GatAdjacency::FromGraph(g));
  Var h = Var::Param(g.features);
  Var a_src = Var::Param(Matrix(4, 1));
  Var a_dst = Var::Param(Matrix(4, 1));
  Var out = ag::GatPropagate(adj, h, a_src, a_dst);
  for (std::int64_t v = 0; v < g.num_nodes; ++v) {
    const auto nb = g.Neighbors(v);
    for (std::int64_t c = 0; c < 4; ++c) {
      float mean = g.features(v, c);
      for (std::int32_t u : nb) mean += g.features(u, c);
      mean /= static_cast<float>(nb.size() + 1);
      EXPECT_NEAR(out.value()(v, c), mean, 1e-5f);
    }
  }
}

TEST(GatPropagate, GradCheck) {
  Graph g = SmallGraph();
  auto adj = std::make_shared<const GatAdjacency>(GatAdjacency::FromGraph(g));
  Rng rng(1);
  Matrix h = Matrix::RandomNormal(6, 4, 0.0f, 0.7f, rng);
  Matrix a_src = Matrix::RandomNormal(4, 1, 0.0f, 0.5f, rng);
  Matrix a_dst = Matrix::RandomNormal(4, 1, 0.0f, 0.5f, rng);
  CheckGradients(
      {h, a_src, a_dst},
      [adj](const std::vector<Var>& p) {
        Var out = ag::GatPropagate(adj, p[0], p[1], p[2]);
        Rng wrng(2);
        Var w = Var::Constant(Matrix::RandomNormal(6, 4, 0, 1, wrng));
        return ag::SumAll(ag::Hadamard(out, w));
      },
      /*h=*/5e-3f, /*tol=*/4e-2f);
}

TEST(GatEncoder, EncodesAndTrains) {
  Graph g = SmallGraph();
  Rng rng(3);
  GatConfig cfg;
  cfg.dims = {4, 8, 2};
  GatEncoder enc(cfg, rng);
  Matrix emb = enc.Encode(g);
  EXPECT_EQ(emb.rows(), 6);
  EXPECT_EQ(emb.cols(), 2);
  EXPECT_TRUE(AllFinite(emb));

  auto adj = std::make_shared<const GatAdjacency>(GatAdjacency::FromGraph(g));
  Adam::Options opts;
  opts.lr = 0.05f;
  Adam adam(enc.params().params(), opts);
  float first = 0.0f, last = 0.0f;
  for (int i = 0; i < 60; ++i) {
    Var logits = enc.Forward(adj, Var::Constant(g.features), rng, true);
    Var loss = ag::SoftmaxCrossEntropy(logits, g.labels);
    if (i == 0) first = loss.value()(0, 0);
    last = loss.value()(0, 0);
    adam.ZeroGrad();
    loss.Backward();
    adam.Step();
  }
  EXPECT_LT(last, first * 0.6f);
}

// --- IO. -----------------------------------------------------------------------

TEST(MatrixCsv, RoundTrip) {
  Rng rng(4);
  Matrix m = Matrix::RandomNormal(7, 5, 0, 2, rng);
  const std::string path = ::testing::TempDir() + "/e2gcl_matrix.csv";
  ASSERT_TRUE(SaveMatrixCsv(m, path));
  Matrix loaded;
  ASSERT_TRUE(LoadMatrixCsv(path, &loaded));
  EXPECT_EQ(loaded.rows(), 7);
  EXPECT_EQ(loaded.cols(), 5);
  EXPECT_LT(MaxAbsDiff(m, loaded), 1e-4f);
  std::remove(path.c_str());
}

TEST(MatrixCsv, MissingFileFails) {
  Matrix out;
  EXPECT_FALSE(LoadMatrixCsv("/nonexistent/nope.csv", &out));
}

TEST(GraphEdgeList, RoundTripWithLabels) {
  Graph g = SmallGraph();
  const std::string path = ::testing::TempDir() + "/e2gcl_graph.txt";
  ASSERT_TRUE(SaveGraphEdgeList(g, path));
  Graph loaded;
  ASSERT_TRUE(LoadGraphEdgeList(path, &loaded));
  EXPECT_EQ(loaded.num_nodes, g.num_nodes);
  EXPECT_EQ(loaded.num_edges(), g.num_edges());
  EXPECT_EQ(loaded.labels, g.labels);
  EXPECT_EQ(loaded.num_classes, g.num_classes);
  for (const auto& [u, v] : UndirectedEdges(g)) {
    EXPECT_TRUE(loaded.HasEdge(u, v));
  }
  std::remove(path.c_str());
}

// --- Projection. -----------------------------------------------------------------

TEST(PcaProject, SeparatesWellSeparatedClusters) {
  // Two tight clusters along one axis: the first principal component
  // must separate them linearly.
  Rng rng(5);
  Matrix pts(60, 6);
  for (std::int64_t i = 0; i < 60; ++i) {
    const float center = i < 30 ? -5.0f : 5.0f;
    pts(i, 0) = center + rng.Normal(0, 0.3f);
    for (std::int64_t c = 1; c < 6; ++c) pts(i, c) = rng.Normal(0, 0.3f);
  }
  Matrix proj = PcaProject(pts, 2, rng);
  // Signs within each cluster must agree on component 0.
  int agree = 0;
  for (std::int64_t i = 0; i < 30; ++i) {
    for (std::int64_t j = 30; j < 60; ++j) {
      if ((proj(i, 0) < 0) != (proj(j, 0) < 0)) ++agree;
    }
  }
  EXPECT_EQ(agree, 900);
}

TEST(PcaProject, OutputShape) {
  Rng rng(6);
  Matrix pts = Matrix::RandomNormal(20, 10, 0, 1, rng);
  Matrix proj = PcaProject(pts, 3, rng);
  EXPECT_EQ(proj.rows(), 20);
  EXPECT_EQ(proj.cols(), 3);
  EXPECT_TRUE(AllFinite(proj));
}

TEST(AsciiScatter, MarksLandInCanvas) {
  Matrix pts = Matrix::FromRows({{0, 0}, {1, 1}, {0.5f, 0.5f}});
  std::string art = AsciiScatter(pts, {'a', 'b', 'c'}, 11, 5);
  EXPECT_NE(art.find('a'), std::string::npos);
  EXPECT_NE(art.find('b'), std::string::npos);
  EXPECT_NE(art.find('c'), std::string::npos);
  // 5 lines of 11 chars + newlines.
  EXPECT_EQ(art.size(), 5u * 12u);
}

}  // namespace
}  // namespace e2gcl
