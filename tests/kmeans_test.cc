#include "cluster/kmeans.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace e2gcl {
namespace {

/// Three well-separated Gaussian blobs.
Matrix Blobs(std::int64_t per_blob, std::uint64_t seed) {
  Rng rng(seed);
  Matrix m(3 * per_blob, 2);
  const float centers[3][2] = {{0, 0}, {10, 0}, {0, 10}};
  for (std::int64_t b = 0; b < 3; ++b) {
    for (std::int64_t i = 0; i < per_blob; ++i) {
      m(b * per_blob + i, 0) = centers[b][0] + rng.Normal(0, 0.5f);
      m(b * per_blob + i, 1) = centers[b][1] + rng.Normal(0, 0.5f);
    }
  }
  return m;
}

TEST(KMeans, RecoversSeparatedBlobs) {
  Matrix pts = Blobs(50, 1);
  Rng rng(2);
  KMeansOptions opts;
  opts.num_clusters = 3;
  KMeansResult res = KMeans(pts, opts, rng);
  // Each blob must map to a single cluster.
  for (std::int64_t b = 0; b < 3; ++b) {
    const std::int64_t c0 = res.assignment[b * 50];
    for (std::int64_t i = 1; i < 50; ++i) {
      EXPECT_EQ(res.assignment[b * 50 + i], c0) << "blob " << b;
    }
  }
  EXPECT_LT(res.inertia, 150.0);  // ~0.5 var * 2 dims * 150 points
}

TEST(KMeans, ClustersPartitionInput) {
  Matrix pts = Blobs(30, 3);
  Rng rng(4);
  KMeansOptions opts;
  opts.num_clusters = 5;
  KMeansResult res = KMeans(pts, opts, rng);
  std::int64_t total = 0;
  for (const auto& c : res.clusters) total += c.size();
  EXPECT_EQ(total, pts.rows());
  for (std::int64_t c = 0; c < 5; ++c) {
    for (std::int64_t v : res.clusters[c]) {
      EXPECT_EQ(res.assignment[v], c);
    }
  }
}

TEST(KMeans, MaxRadiusBoundsMembers) {
  Matrix pts = Blobs(40, 5);
  Rng rng(6);
  KMeansOptions opts;
  opts.num_clusters = 4;
  KMeansResult res = KMeans(pts, opts, rng);
  for (std::int64_t c = 0; c < res.centers.rows(); ++c) {
    for (std::int64_t v : res.clusters[c]) {
      EXPECT_LE(RowDistance(pts, v, res.centers, c),
                res.max_radius[c] + 1e-4f);
    }
  }
}

TEST(KMeans, FewerPointsThanClusters) {
  Matrix pts = Matrix::FromRows({{0, 0}, {5, 5}});
  Rng rng(7);
  KMeansOptions opts;
  opts.num_clusters = 10;
  KMeansResult res = KMeans(pts, opts, rng);
  EXPECT_EQ(res.centers.rows(), 2);
  EXPECT_EQ(res.clusters.size(), 2u);
}

TEST(KMeans, SingletonInput) {
  Matrix pts = Matrix::FromRows({{1, 2, 3}});
  Rng rng(8);
  KMeansOptions opts;
  opts.num_clusters = 3;
  KMeansResult res = KMeans(pts, opts, rng);
  EXPECT_EQ(res.centers.rows(), 1);
  EXPECT_EQ(res.assignment[0], 0);
  EXPECT_NEAR(res.inertia, 0.0, 1e-9);
}

TEST(KMeans, NoEmptyClustersOnDuplicatePoints) {
  // 20 identical points, 4 clusters: re-seeding must not crash, and all
  // points must be assigned.
  Matrix pts(20, 2, 1.0f);
  Rng rng(9);
  KMeansOptions opts;
  opts.num_clusters = 4;
  KMeansResult res = KMeans(pts, opts, rng);
  std::int64_t total = 0;
  for (const auto& c : res.clusters) total += c.size();
  EXPECT_EQ(total, 20);
}

TEST(KMeans, MoreClustersLowerInertia) {
  Matrix pts = Blobs(60, 10);
  Rng rng_a(11), rng_b(11);
  KMeansOptions few, many;
  few.num_clusters = 2;
  many.num_clusters = 8;
  const double i_few = KMeans(pts, few, rng_a).inertia;
  const double i_many = KMeans(pts, many, rng_b).inertia;
  EXPECT_LT(i_many, i_few);
}

TEST(KMeans, UniformSeedingAlsoWorks) {
  Matrix pts = Blobs(40, 12);
  Rng rng(13);
  KMeansOptions opts;
  opts.num_clusters = 3;
  opts.kmeanspp = false;
  KMeansResult res = KMeans(pts, opts, rng);
  EXPECT_EQ(res.centers.rows(), 3);
  // Uniform seeding has no kmeans++ guarantee; just require a sane
  // partition and that kmeans++ seeding is at least as good.
  EXPECT_TRUE(std::isfinite(res.inertia));
  Rng rng_pp(13);
  KMeansOptions pp = opts;
  pp.kmeanspp = true;
  EXPECT_LE(KMeans(pts, pp, rng_pp).inertia, res.inertia + 1e-6);
}

// Parameterized: inertia decreases (weakly) as k grows over a sweep.
class KMeansSweep : public ::testing::TestWithParam<int> {};

TEST_P(KMeansSweep, InertiaFiniteAndPartitionComplete) {
  const int k = GetParam();
  Matrix pts = Blobs(30, 17);
  Rng rng(k);
  KMeansOptions opts;
  opts.num_clusters = k;
  KMeansResult res = KMeans(pts, opts, rng);
  EXPECT_TRUE(std::isfinite(res.inertia));
  std::int64_t total = 0;
  for (const auto& c : res.clusters) total += c.size();
  EXPECT_EQ(total, pts.rows());
}

INSTANTIATE_TEST_SUITE_P(Ks, KMeansSweep, ::testing::Values(1, 2, 3, 5, 9, 16));

}  // namespace
}  // namespace e2gcl
