// Empirical replications of the paper's theoretical claims that admit
// small-scale verification:
//   * Theorem 3: the sampling-based greedy achieves a large fraction of
//     the optimal representativity gain (brute-forced on tiny inputs).
//   * Proposition 1: edge deletion + edge addition + feature
//     perturbation express the other augmentation operations (feature
//     masking, node dropping, subgraph sampling) — shown constructively.

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/node_selector.h"
#include "core/raw_aggregation.h"
#include "graph/generators.h"
#include "test_util.h"

namespace e2gcl {
namespace {

// --- Theorem 3 (approximation quality). -------------------------------------

/// Exhaustive optimum of the Eq. 14 objective over all subsets of size k.
double BruteForceOptimum(const Matrix& r, const KMeansResult& km,
                         std::int64_t k) {
  const std::int64_t n = r.rows();
  std::vector<std::int64_t> subset(k);
  double best = 1e300;
  std::vector<char> mask(n, 0);
  std::fill(mask.begin(), mask.begin() + k, 1);
  std::sort(mask.begin(), mask.end());  // lexicographically first combo
  do {
    subset.clear();
    for (std::int64_t i = 0; i < n; ++i) {
      if (mask[i]) subset.push_back(i);
    }
    best = std::min(best, RepresentativityObjective(r, km, subset));
  } while (std::next_permutation(mask.begin(), mask.end()));
  return best;
}

TEST(Theorem3, GreedyNearOptimalOnTinyInstances) {
  SbmSpec spec;
  spec.num_nodes = 14;
  spec.num_classes = 3;
  spec.feature_dim = 15;
  spec.avg_degree = 4;
  spec.informative_dims_per_class = 4;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Graph g = GenerateSbm(spec, seed);
    Matrix r = RawAggregation(g, 2);

    const std::int64_t k = 3;
    SelectorConfig cfg;
    cfg.budget = k;
    cfg.num_clusters = 3;
    cfg.sample_size = 14;  // full candidate pool: plain greedy
    cfg.auto_sample_size = false;

    // Replicate SelectCoreset's internal clustering exactly (same rng
    // stream, same options) so greedy and the brute-forced optimum are
    // compared under the SAME objective — Theorem 3 says nothing about
    // greedy under one clustering vs the optimum under another.
    KMeansOptions km_opts;
    km_opts.num_clusters = 3;
    km_opts.max_iters = cfg.kmeans_iters;
    Rng km_rng(seed);
    KMeansResult km = KMeans(r, km_opts, km_rng);
    const double optimum = BruteForceOptimum(r, km, k);

    Rng rng(seed);
    SelectionResult greedy = SelectCoreset(r, cfg, rng);
    const double greedy_obj = RepresentativityObjective(r, km, greedy.nodes);

    // Theorem 3 guarantees the greedy captures a (1 - 1/e - eps)
    // fraction of the optimal *gain* over the empty selection (eps = 0
    // here: the full pool makes the sampling exact). RS(empty) is
    // k * d_init per node, with d_init the selector's "unrepresented"
    // distance — replicate its computation (same float ops) so the
    // baseline matches what the greedy actually maximized against.
    float center_spread = 0.0f;
    for (std::int64_t i = 0; i < km.centers.rows(); ++i) {
      for (std::int64_t j = i + 1; j < km.centers.rows(); ++j) {
        center_spread = std::max(
            center_spread, RowDistance(km.centers, i, km.centers, j));
      }
    }
    float max_radius = 0.0f;
    for (float rad : km.max_radius) max_radius = std::max(max_radius, rad);
    const double d_init = center_spread + 2.0f * max_radius + 1.0f;
    const double f_empty = d_init * static_cast<double>(spec.num_nodes);
    const double gain_greedy = f_empty - greedy_obj;
    const double gain_opt = f_empty - optimum;
    EXPECT_GE(gain_greedy, (1.0 - 1.0 / std::exp(1.0)) * gain_opt - 1e-6)
        << "seed " << seed << ": greedy gain " << gain_greedy
        << " vs optimal gain " << gain_opt;
    // Empirical tripwire, far tighter than the theorem's objective
    // bound: on these instances the greedy lands within 50% of the
    // brute-forced optimum.
    EXPECT_LE(greedy_obj, optimum * 1.5 + 1e-6)
        << "seed " << seed << ": greedy " << greedy_obj << " vs optimum "
        << optimum;
    EXPECT_GE(greedy_obj, optimum - 1e-6);  // optimum really is optimal
  }
}

// --- Proposition 1 (operation expressivity). ---------------------------------
// The paper's argument is constructive; we verify the constructions on a
// concrete graph: every "other" augmentation operation is reproduced
// exactly by a combination of edge deletion (ED), edge addition (EA),
// and feature perturbation (FP, Eq. 16 with chosen u).

Graph BaseGraph() {
  return BuildGraph(5,
                    {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 2}},
                    Matrix::FromRows({{1, 2},
                                      {3, 4},
                                      {5, 6},
                                      {7, 8},
                                      {9, 10}}));
}

/// FP with u = -1 (Eq. 16's lower extreme): x' = x + (-1) * x = 0.
Matrix PerturbToZero(const Matrix& x, std::int64_t node, std::int64_t dim) {
  Matrix out = x;
  out(node, dim) = 0.0f;
  return out;
}

TEST(Proposition1, FeatureMaskingIsFeaturePerturbation) {
  // FM zeroes dimension 1 for all nodes; FP with u = -1 on the same
  // entries produces the identical view.
  Graph g = BaseGraph();
  Matrix masked = g.features;
  for (std::int64_t v = 0; v < g.num_nodes; ++v) masked(v, 1) = 0.0f;
  Matrix via_fp = g.features;
  for (std::int64_t v = 0; v < g.num_nodes; ++v) {
    via_fp = PerturbToZero(via_fp, v, 1);
  }
  EXPECT_TRUE(masked == via_fp);
}

TEST(Proposition1, NodeDroppingIsEdgeDeletionPlusPerturbation) {
  // Dropping node 2 == deleting all its edges and zeroing its features:
  // no GCN layer can then receive information from it.
  Graph g = BaseGraph();
  // Target: induced subgraph without node 2 (relabeled view).
  Graph dropped = InducedSubgraph(g, {0, 1, 3, 4});

  // Construction: ED on every edge of node 2, FP(u=-1) on its features.
  std::vector<std::pair<std::int64_t, std::int64_t>> kept;
  for (const auto& [u, v] : UndirectedEdges(g)) {
    if (u != 2 && v != 2) kept.emplace_back(u, v);
  }
  Matrix feats = g.features;
  for (std::int64_t d = 0; d < g.feature_dim(); ++d) {
    feats = PerturbToZero(feats, 2, d);
  }
  Graph constructed = BuildGraph(g.num_nodes, kept, feats);

  // Node 2 is isolated with zero features: every remaining node's
  // neighborhood matches the dropped view.
  EXPECT_EQ(constructed.Degree(2), 0);
  EXPECT_EQ(constructed.num_edges(), dropped.num_edges());
  for (const auto& [u, v] : UndirectedEdges(dropped)) {
    // Map dropped-view ids {0,1,3,4} -> original ids.
    const std::int64_t orig_ids[] = {0, 1, 3, 4};
    EXPECT_TRUE(constructed.HasEdge(orig_ids[u], orig_ids[v]));
  }
}

TEST(Proposition1, NodeAdditionIsEdgeAddition) {
  // Adding a node with edges == starting from the graph that includes
  // the (isolated) node and applying EA. BuildGraph over num_nodes + 1
  // models the enlarged universe.
  Graph g = BaseGraph();
  auto edges = UndirectedEdges(g);
  edges.emplace_back(5, 0);
  edges.emplace_back(5, 3);
  Matrix feats(6, 2);
  for (std::int64_t v = 0; v < 5; ++v) {
    feats(v, 0) = g.features(v, 0);
    feats(v, 1) = g.features(v, 1);
  }
  feats(5, 0) = 11.0f;
  Graph grown = BuildGraph(6, edges, feats);
  EXPECT_EQ(grown.Degree(5), 2);
  EXPECT_TRUE(grown.HasEdge(5, 0));
}

TEST(Proposition1, SubgraphSamplingIsEdgeDeletion) {
  // Keeping only the subgraph {0, 1, 2} == deleting all edges with an
  // endpoint outside the sample (plus FP-zeroing outside features).
  Graph g = BaseGraph();
  std::vector<std::pair<std::int64_t, std::int64_t>> kept;
  for (const auto& [u, v] : UndirectedEdges(g)) {
    if (u <= 2 && v <= 2) kept.emplace_back(u, v);
  }
  Graph constructed = BuildGraph(g.num_nodes, kept, g.features);
  Graph target = InducedSubgraph(g, {0, 1, 2});
  EXPECT_EQ(constructed.num_edges(), target.num_edges());
  for (const auto& [u, v] : UndirectedEdges(target)) {
    EXPECT_TRUE(constructed.HasEdge(u, v));
  }
  EXPECT_EQ(constructed.Degree(3), 0);
  EXPECT_EQ(constructed.Degree(4), 0);
}

}  // namespace
}  // namespace e2gcl
