// Unit tests for the versioned binary state format (src/io/serialize)
// and the checkpoint container (src/io/checkpoint): round-trips, CRC
// integrity, truncation handling, and atomic-write behaviour.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "io/checkpoint.h"
#include "io/serialize.h"
#include "tensor/rng.h"

namespace e2gcl {
namespace {

namespace fs = std::filesystem;

constexpr std::uint32_t kMagic = 0xABCD1234u;

std::string TempDir(const std::string& tag) {
  fs::path dir = fs::temp_directory_path() /
                 ("e2gcl_serialize_test_" + tag + "_" +
                  std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(Crc32, MatchesKnownVector) {
  // The canonical CRC-32/IEEE check value.
  const char* s = "123456789";
  EXPECT_EQ(Crc32(s, 9), 0xCBF43926u);
  EXPECT_EQ(Crc32(s, 0), 0u);
}

TEST(ByteRoundTrip, AllScalarTypes) {
  ByteWriter w;
  w.WriteU32(0xDEADBEEFu);
  w.WriteU64(0x0123456789ABCDEFull);
  w.WriteI64(-42);
  w.WriteF32(3.5f);
  w.WriteString("hello");

  ByteReader r(w.bytes());
  EXPECT_EQ(r.ReadU32(), 0xDEADBEEFu);
  EXPECT_EQ(r.ReadU64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.ReadI64(), -42);
  EXPECT_EQ(r.ReadF32(), 3.5f);
  EXPECT_EQ(r.ReadString(), "hello");
  EXPECT_TRUE(r.AtEnd());
}

TEST(ByteRoundTrip, MatrixExact) {
  Rng rng(7);
  Matrix m = Matrix::RandomNormal(5, 3, 0.0f, 1.0f, rng);
  ByteWriter w;
  w.WriteMatrix(m);
  w.WriteMatrix(Matrix());  // empty matrix round-trips too

  ByteReader r(w.bytes());
  Matrix back = r.ReadMatrix();
  Matrix empty = r.ReadMatrix();
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.AtEnd());
  EXPECT_TRUE(back == m);
  EXPECT_TRUE(empty.empty());
}

TEST(ByteReader, TruncatedReadFailsSticky) {
  ByteWriter w;
  w.WriteU32(1);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.ReadU64(), 0u);  // needs 8 bytes, only 4 present
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.ReadU32(), 0u);  // sticky failure
  EXPECT_FALSE(r.AtEnd());
}

TEST(ByteReader, CorruptMatrixShapeRejectedBeforeAllocation) {
  ByteWriter w;
  w.WriteI64(1LL << 40);  // absurd rows
  w.WriteI64(1LL << 40);  // absurd cols
  ByteReader r(w.bytes());
  Matrix m = r.ReadMatrix();
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(m.empty());
}

TEST(StateFile, RoundTripsMultipleSections) {
  const std::string dir = TempDir("roundtrip");
  const std::string path = dir + "/state.bin";
  std::vector<StateSection> sections = {
      {"alpha", std::string("payload-a")},
      {"beta", std::string("\x00\x01\x02\xFF", 4)},
      {"empty", std::string()},
  };
  ASSERT_TRUE(WriteStateFile(path, kMagic, 3, sections));

  std::vector<StateSection> back;
  std::uint32_t version = 0;
  ASSERT_TRUE(ReadStateFile(path, kMagic, 3, &back, &version));
  EXPECT_EQ(version, 3u);
  ASSERT_EQ(back.size(), 3u);
  EXPECT_EQ(back[0].name, "alpha");
  EXPECT_EQ(back[0].payload, "payload-a");
  EXPECT_EQ(back[1].payload, sections[1].payload);
  EXPECT_EQ(back[2].payload, "");
  EXPECT_NE(FindSection(back, "beta"), nullptr);
  EXPECT_EQ(FindSection(back, "missing"), nullptr);
  fs::remove_all(dir);
}

TEST(StateFile, RejectsWrongMagicAndFutureVersion) {
  const std::string dir = TempDir("magic");
  const std::string path = dir + "/state.bin";
  ASSERT_TRUE(WriteStateFile(path, kMagic, 2, {{"s", "x"}}));
  std::vector<StateSection> back;
  EXPECT_FALSE(ReadStateFile(path, kMagic + 1, 2, &back));
  EXPECT_FALSE(ReadStateFile(path, kMagic, 1, &back));  // version 2 > max 1
  EXPECT_TRUE(ReadStateFile(path, kMagic, 2, &back));
  fs::remove_all(dir);
}

TEST(StateFile, DetectsPayloadCorruption) {
  const std::string dir = TempDir("corrupt");
  const std::string path = dir + "/state.bin";
  ASSERT_TRUE(WriteStateFile(path, kMagic, 1,
                             {{"weights", std::string(256, 'w')}}));
  std::string bytes = ReadFileBytes(path);
  bytes[bytes.size() - 10] ^= 0x40;  // flip one payload bit
  WriteFileBytes(path, bytes);
  std::vector<StateSection> back;
  EXPECT_FALSE(ReadStateFile(path, kMagic, 1, &back));
  EXPECT_TRUE(back.empty());
  fs::remove_all(dir);
}

TEST(StateFile, DetectsTruncationAndTrailingGarbage) {
  const std::string dir = TempDir("truncate");
  const std::string path = dir + "/state.bin";
  ASSERT_TRUE(WriteStateFile(path, kMagic, 1,
                             {{"weights", std::string(256, 'w')}}));
  const std::string full = ReadFileBytes(path);

  WriteFileBytes(path, full.substr(0, full.size() / 2));
  std::vector<StateSection> back;
  EXPECT_FALSE(ReadStateFile(path, kMagic, 1, &back));

  WriteFileBytes(path, full + "garbage");
  EXPECT_FALSE(ReadStateFile(path, kMagic, 1, &back));

  WriteFileBytes(path, full);
  EXPECT_TRUE(ReadStateFile(path, kMagic, 1, &back));
  fs::remove_all(dir);
}

TEST(StateFile, AtomicWriteLeavesNoTmpFile) {
  const std::string dir = TempDir("atomic");
  const std::string path = dir + "/state.bin";
  ASSERT_TRUE(WriteStateFile(path, kMagic, 1, {{"s", "x"}}));
  EXPECT_TRUE(fs::exists(path));
  EXPECT_FALSE(fs::exists(path + ".tmp"));

  // A write to an unreachable path fails cleanly without creating the
  // destination.
  const std::string bad = dir + "/no/such/subdir/state.bin";
  EXPECT_FALSE(WriteStateFile(bad, kMagic, 1, {{"s", "x"}}));
  EXPECT_FALSE(fs::exists(bad));
  fs::remove_all(dir);
}

TEST(RngState, SerializedStateContinuesExactStream) {
  Rng a(123);
  for (int i = 0; i < 100; ++i) a.Uniform();  // advance mid-stream
  const std::string state = a.SerializeState();

  Rng b(999);  // completely different stream
  ASSERT_TRUE(b.RestoreState(state));
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.engine()(), b.engine()());
  }
}

TEST(RngState, RestoreRejectsGarbageWithoutClobbering) {
  Rng a(5);
  const std::uint64_t before = Rng(5).engine()();
  EXPECT_FALSE(a.RestoreState("definitely not an engine state"));
  EXPECT_EQ(a.engine()(), before);  // untouched on failure
}

TEST(TrainerCheckpointFile, RoundTripsAllFields) {
  const std::string dir = TempDir("ckpt");
  const std::string path = CheckpointPath(dir, 12);
  Rng rng(3);

  TrainerCheckpoint c;
  c.epoch = 12;
  c.config_fingerprint = 0xFEEDFACEull;
  c.retries_used = 1;
  c.lr_scale = 0.5f;
  c.rng_state = rng.SerializeState();
  c.encoder_params = {Matrix::RandomNormal(4, 3, 0, 1, rng),
                      Matrix::RandomNormal(1, 3, 0, 1, rng)};
  c.projector_params = {Matrix::RandomNormal(3, 3, 0, 1, rng)};
  c.adam_m = {Matrix(4, 3, 0.25f), Matrix(1, 3, 0.5f), Matrix(3, 3, 1.0f)};
  c.adam_v = {Matrix(4, 3, 0.125f), Matrix(1, 3, 0.0f), Matrix(3, 3, 2.0f)};
  c.adam_t = 77;
  ASSERT_TRUE(SaveTrainerCheckpoint(path, c));

  TrainerCheckpoint back;
  ASSERT_TRUE(LoadTrainerCheckpoint(path, &back));
  EXPECT_EQ(back.epoch, 12);
  EXPECT_EQ(back.config_fingerprint, 0xFEEDFACEull);
  EXPECT_EQ(back.retries_used, 1);
  EXPECT_EQ(back.lr_scale, 0.5f);
  EXPECT_EQ(back.rng_state, c.rng_state);
  ASSERT_EQ(back.encoder_params.size(), 2u);
  EXPECT_TRUE(back.encoder_params[0] == c.encoder_params[0]);
  EXPECT_TRUE(back.encoder_params[1] == c.encoder_params[1]);
  ASSERT_EQ(back.projector_params.size(), 1u);
  ASSERT_EQ(back.adam_m.size(), 3u);
  ASSERT_EQ(back.adam_v.size(), 3u);
  EXPECT_TRUE(back.adam_m[1] == c.adam_m[1]);
  EXPECT_TRUE(back.adam_v[2] == c.adam_v[2]);
  EXPECT_EQ(back.adam_t, 77);
  fs::remove_all(dir);
}

TEST(TrainerCheckpointFile, ListAndPruneKeepNewest) {
  const std::string dir = TempDir("prune");
  TrainerCheckpoint c;
  c.epoch = 0;
  for (std::int64_t e : {3, 9, 1, 7}) {
    c.epoch = e;
    ASSERT_TRUE(SaveTrainerCheckpoint(CheckpointPath(dir, e), c));
  }
  // A stray non-checkpoint file must be ignored, not deleted.
  WriteFileBytes(dir + "/notes.txt", "hands off");

  std::vector<std::string> files = ListCheckpointFiles(dir);
  ASSERT_EQ(files.size(), 4u);
  EXPECT_NE(files[0].find("ckpt-000001"), std::string::npos);
  EXPECT_NE(files[3].find("ckpt-000009"), std::string::npos);

  PruneCheckpoints(dir, 2);
  files = ListCheckpointFiles(dir);
  ASSERT_EQ(files.size(), 2u);
  EXPECT_NE(files[0].find("ckpt-000007"), std::string::npos);
  EXPECT_NE(files[1].find("ckpt-000009"), std::string::npos);
  EXPECT_TRUE(fs::exists(dir + "/notes.txt"));
  fs::remove_all(dir);
}

TEST(TrainerCheckpointFile, FindNewestSkipsCorruptAndMismatched) {
  const std::string dir = TempDir("skip");
  TrainerCheckpoint c;
  c.config_fingerprint = 42;
  c.encoder_params = {Matrix(2, 2, 1.0f)};
  c.adam_m = {Matrix(2, 2)};
  c.adam_v = {Matrix(2, 2)};

  c.epoch = 2;
  ASSERT_TRUE(SaveTrainerCheckpoint(CheckpointPath(dir, 2), c));
  c.epoch = 5;
  ASSERT_TRUE(SaveTrainerCheckpoint(CheckpointPath(dir, 5), c));
  c.epoch = 9;
  c.config_fingerprint = 777;  // written by a "different" config
  ASSERT_TRUE(SaveTrainerCheckpoint(CheckpointPath(dir, 9), c));
  // Corrupt the epoch-5 file.
  std::string bytes = ReadFileBytes(CheckpointPath(dir, 5));
  bytes[bytes.size() / 2] ^= 0xFF;
  WriteFileBytes(CheckpointPath(dir, 5), bytes);

  TrainerCheckpoint found;
  std::string from;
  ASSERT_TRUE(FindNewestValidCheckpoint(dir, 42, &found, &from));
  EXPECT_EQ(found.epoch, 2);  // 9 mismatches fingerprint, 5 is corrupt
  EXPECT_NE(from.find("ckpt-000002"), std::string::npos);

  EXPECT_FALSE(FindNewestValidCheckpoint(dir, 41, &found));
  fs::remove_all(dir);
}

}  // namespace
}  // namespace e2gcl
