#include "tensor/matrix.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "tensor/rng.h"

namespace e2gcl {
namespace {

TEST(Matrix, DefaultIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0);
  EXPECT_EQ(m.cols(), 0);
  EXPECT_TRUE(m.empty());
}

TEST(Matrix, ConstructZeroInitialized) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  for (std::int64_t i = 0; i < m.size(); ++i) EXPECT_EQ(m.data()[i], 0.0f);
}

TEST(Matrix, ConstructFilled) {
  Matrix m(2, 2, 3.5f);
  EXPECT_EQ(m(0, 0), 3.5f);
  EXPECT_EQ(m(1, 1), 3.5f);
}

TEST(Matrix, FromRowsRoundTrip) {
  Matrix m = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m(0, 2), 3.0f);
  EXPECT_EQ(m(1, 0), 4.0f);
}

TEST(Matrix, IdentityDiagonal) {
  Matrix id = Matrix::Identity(3);
  for (std::int64_t r = 0; r < 3; ++r) {
    for (std::int64_t c = 0; c < 3; ++c) {
      EXPECT_EQ(id(r, c), r == c ? 1.0f : 0.0f);
    }
  }
}

TEST(Matrix, RowExtraction) {
  Matrix m = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix r = m.Row(1);
  EXPECT_EQ(r.rows(), 1);
  EXPECT_EQ(r(0, 0), 3.0f);
  EXPECT_EQ(r(0, 1), 4.0f);
}

TEST(Matrix, EqualityIsExact) {
  Matrix a = Matrix::FromRows({{1, 2}});
  Matrix b = Matrix::FromRows({{1, 2}});
  Matrix c = Matrix::FromRows({{1, 2.0001f}});
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

TEST(MatMul, SmallKnownProduct) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{5, 6}, {7, 8}});
  Matrix c = MatMul(a, b);
  EXPECT_EQ(c(0, 0), 19.0f);
  EXPECT_EQ(c(0, 1), 22.0f);
  EXPECT_EQ(c(1, 0), 43.0f);
  EXPECT_EQ(c(1, 1), 50.0f);
}

TEST(MatMul, IdentityIsNeutral) {
  Rng rng(1);
  Matrix a = Matrix::RandomNormal(4, 4, 0, 1, rng);
  EXPECT_LT(MaxAbsDiff(MatMul(a, Matrix::Identity(4)), a), 1e-6f);
  EXPECT_LT(MaxAbsDiff(MatMul(Matrix::Identity(4), a), a), 1e-6f);
}

TEST(MatMul, TransposedVariantsAgree) {
  Rng rng(2);
  Matrix a = Matrix::RandomNormal(3, 5, 0, 1, rng);
  Matrix b = Matrix::RandomNormal(5, 4, 0, 1, rng);
  Matrix direct = MatMul(a, b);
  EXPECT_LT(MaxAbsDiff(MatMulTransposedB(a, Transpose(b)), direct), 1e-5f);
  EXPECT_LT(MaxAbsDiff(MatMulTransposedA(Transpose(a), b), direct), 1e-5f);
}

TEST(ElementwiseOps, AddSubHadamard) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{5, 6}, {7, 8}});
  EXPECT_EQ(Add(a, b)(1, 1), 12.0f);
  EXPECT_EQ(Sub(a, b)(0, 0), -4.0f);
  EXPECT_EQ(Hadamard(a, b)(1, 0), 21.0f);
  EXPECT_EQ(Scale(a, 2.0f)(0, 1), 4.0f);
}

TEST(ElementwiseOps, AxpyInPlace) {
  Matrix a = Matrix::FromRows({{1, 1}});
  Matrix b = Matrix::FromRows({{2, 3}});
  AxpyInPlace(a, 0.5f, b);
  EXPECT_EQ(a(0, 0), 2.0f);
  EXPECT_EQ(a(0, 1), 2.5f);
}

TEST(Reductions, SumMeanNorm) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  EXPECT_FLOAT_EQ(SumAll(a), 10.0f);
  EXPECT_FLOAT_EQ(MeanAll(a), 2.5f);
  EXPECT_FLOAT_EQ(FrobeniusNorm(a), std::sqrt(30.0f));
}

TEST(Reductions, RowColSums) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix rs = RowSums(a);
  Matrix cs = ColSums(a);
  EXPECT_FLOAT_EQ(rs(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(rs(1, 0), 7.0f);
  EXPECT_FLOAT_EQ(cs(0, 0), 4.0f);
  EXPECT_FLOAT_EQ(cs(0, 1), 6.0f);
}

TEST(Normalize, RowsHaveUnitNorm) {
  Rng rng(3);
  Matrix a = Matrix::RandomNormal(5, 7, 0, 2, rng);
  Matrix n = NormalizeRowsL2(a);
  Matrix norms = RowL2Norms(n);
  for (std::int64_t r = 0; r < 5; ++r) EXPECT_NEAR(norms(r, 0), 1.0f, 1e-5f);
}

TEST(Normalize, ZeroRowStaysZero) {
  Matrix a(2, 3);
  a(1, 0) = 5.0f;
  Matrix n = NormalizeRowsL2(a);
  EXPECT_EQ(n(0, 0), 0.0f);
  EXPECT_EQ(n(0, 1), 0.0f);
  EXPECT_FLOAT_EQ(n(1, 0), 1.0f);
}

TEST(RowDistance, MatchesManual) {
  Matrix a = Matrix::FromRows({{0, 0}, {3, 4}});
  EXPECT_FLOAT_EQ(RowSquaredDistance(a, 0, a, 1), 25.0f);
  EXPECT_FLOAT_EQ(RowDistance(a, 0, a, 1), 5.0f);
  EXPECT_FLOAT_EQ(RowDistance(a, 1, a, 1), 0.0f);
}

TEST(GatherRows, RepeatsAllowed) {
  Matrix a = Matrix::FromRows({{1, 1}, {2, 2}, {3, 3}});
  Matrix g = GatherRows(a, {2, 0, 2});
  EXPECT_EQ(g.rows(), 3);
  EXPECT_EQ(g(0, 0), 3.0f);
  EXPECT_EQ(g(1, 0), 1.0f);
  EXPECT_EQ(g(2, 1), 3.0f);
}

TEST(SoftmaxRows, RowsSumToOneAndOrderPreserved) {
  Matrix a = Matrix::FromRows({{1, 2, 3}, {-5, 0, 5}});
  Matrix s = SoftmaxRows(a);
  for (std::int64_t r = 0; r < 2; ++r) {
    float total = 0.0f;
    for (std::int64_t c = 0; c < 3; ++c) total += s(r, c);
    EXPECT_NEAR(total, 1.0f, 1e-5f);
    EXPECT_LT(s(r, 0), s(r, 1));
    EXPECT_LT(s(r, 1), s(r, 2));
  }
}

TEST(SoftmaxRows, StableForLargeLogits) {
  Matrix a = Matrix::FromRows({{1000, 1001}});
  Matrix s = SoftmaxRows(a);
  EXPECT_TRUE(std::isfinite(s(0, 0)));
  EXPECT_NEAR(s(0, 0) + s(0, 1), 1.0f, 1e-5f);
}

TEST(Transpose, TwiceIsIdentity) {
  Rng rng(4);
  Matrix a = Matrix::RandomNormal(3, 6, 0, 1, rng);
  EXPECT_LT(MaxAbsDiff(Transpose(Transpose(a)), a), 1e-7f);
}

TEST(RandomMatrices, UniformRespectRange) {
  Rng rng(5);
  Matrix u = Matrix::RandomUniform(20, 20, -2.0f, 3.0f, rng);
  for (std::int64_t i = 0; i < u.size(); ++i) {
    EXPECT_GE(u.data()[i], -2.0f);
    EXPECT_LT(u.data()[i], 3.0f);
  }
}

TEST(RandomMatrices, NormalRoughMoments) {
  Rng rng(6);
  Matrix n = Matrix::RandomNormal(100, 100, 1.0f, 2.0f, rng);
  EXPECT_NEAR(MeanAll(n), 1.0f, 0.1f);
}

// Property sweep: MatMul shapes compose correctly across sizes.
class MatMulShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatMulShapes, ProducesCorrectShapeAndMatchesTransposedForm) {
  const auto [m, k, n] = GetParam();
  Rng rng(m * 100 + k * 10 + n);
  Matrix a = Matrix::RandomNormal(m, k, 0, 1, rng);
  Matrix b = Matrix::RandomNormal(k, n, 0, 1, rng);
  Matrix c = MatMul(a, b);
  EXPECT_EQ(c.rows(), m);
  EXPECT_EQ(c.cols(), n);
  EXPECT_LT(MaxAbsDiff(c, MatMulTransposedB(a, Transpose(b))), 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, MatMulShapes,
    ::testing::Values(std::tuple{1, 1, 1}, std::tuple{1, 5, 3},
                      std::tuple{4, 1, 4}, std::tuple{7, 3, 2},
                      std::tuple{5, 8, 5}, std::tuple{16, 16, 16}));


TEST(AllFinite, DetectsNanAndInf) {
  Matrix m(3, 4, 1.0f);
  EXPECT_TRUE(AllFinite(m));
  m(1, 2) = std::numeric_limits<float>::quiet_NaN();
  EXPECT_FALSE(AllFinite(m));
  m(1, 2) = std::numeric_limits<float>::infinity();
  EXPECT_FALSE(AllFinite(m));
  m(1, 2) = -std::numeric_limits<float>::infinity();
  EXPECT_FALSE(AllFinite(m));
  EXPECT_TRUE(AllFinite(Matrix()));
}

TEST(AllFinite, ZeroSkipMasksNanFromMatMulProducts) {
  // The reason AllFinite exists: MatMul's zero-skip fast path evaluates
  // 0 * NaN as 0, so a NaN weight whose input column is all zero yields
  // a fully finite product (and, through MatMulTransposedA, an exactly
  // zero gradient row). Finiteness of downstream activations therefore
  // proves nothing about the parameters themselves.
  Matrix x(2, 3);  // column 2 is all zero
  x(0, 0) = 1.0f;
  x(1, 1) = 2.0f;
  Matrix w(3, 2, 1.0f);
  w(2, 0) = std::numeric_limits<float>::quiet_NaN();
  EXPECT_TRUE(AllFinite(MatMul(x, w)));  // NaN silently masked
  EXPECT_TRUE(AllFinite(MatMulTransposedA(x, Matrix(2, 2, 1.0f))));
  EXPECT_FALSE(AllFinite(w));  // only the direct check sees it
}

}  // namespace
}  // namespace e2gcl
