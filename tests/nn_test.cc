#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "autograd/loss.h"
#include "nn/gcn.h"
#include "nn/mlp.h"
#include "nn/optim.h"
#include "test_util.h"

namespace e2gcl {
namespace {

using testing_util::SmallGraph;

TEST(GlorotUniform, RespectsLimit) {
  Rng rng(1);
  Matrix w = GlorotUniform(30, 50, rng);
  const float limit = std::sqrt(6.0f / 80.0f);
  for (std::int64_t i = 0; i < w.size(); ++i) {
    EXPECT_LE(std::fabs(w.data()[i]), limit + 1e-6f);
  }
}

TEST(ParamSet, CreateTracksParams) {
  ParamSet ps;
  Var a = ps.Create(Matrix(2, 2, 1.0f));
  Var b = ps.Create(Matrix(1, 3, 2.0f));
  EXPECT_EQ(ps.params().size(), 2u);
  EXPECT_TRUE(a.requires_grad());
  EXPECT_TRUE(b.requires_grad());
}

TEST(ParamSet, CloneAndLoadRoundTrip) {
  Rng rng(2);
  ParamSet ps;
  Var a = ps.Create(Matrix::RandomNormal(3, 3, 0, 1, rng));
  auto snapshot = ps.CloneValues();
  a.mutable_value()(0, 0) = 99.0f;
  ps.LoadValues(snapshot);
  EXPECT_NE(a.value()(0, 0), 99.0f);
}

TEST(ParamSet, EmaUpdateMovesTowardOnline) {
  ParamSet target, online;
  Var t = target.Create(Matrix(1, 1, 0.0f));
  online.Create(Matrix(1, 1, 10.0f));
  target.EmaUpdateFrom(online, 0.9f);
  EXPECT_NEAR(t.value()(0, 0), 1.0f, 1e-6f);
  target.EmaUpdateFrom(online, 0.9f);
  EXPECT_NEAR(t.value()(0, 0), 1.9f, 1e-6f);
}

TEST(Adam, MinimizesQuadratic) {
  // minimize ||w - c||^2.
  Rng rng(3);
  ParamSet ps;
  Var w = ps.Create(Matrix::RandomNormal(1, 4, 0, 1, rng));
  Matrix c = Matrix::FromRows({{1, -2, 3, 0.5}});
  Adam::Options opts;
  opts.lr = 0.1f;
  Adam adam(ps.params(), opts);
  for (int step = 0; step < 200; ++step) {
    Var loss = ag::MseLoss(w, Var::Constant(c));
    adam.ZeroGrad();
    loss.Backward();
    adam.Step();
  }
  EXPECT_LT(MaxAbsDiff(w.value(), c), 0.05f);
}

TEST(Adam, WeightDecayShrinksUnusedParams) {
  ParamSet ps;
  Var w = ps.Create(Matrix(1, 1, 1.0f));
  Var u = ps.Create(Matrix(1, 1, 5.0f));
  Adam::Options opts;
  opts.lr = 0.05f;
  opts.weight_decay = 0.1f;
  Adam adam(ps.params(), opts);
  for (int i = 0; i < 50; ++i) {
    Var loss = ag::MseLoss(w, Var::Constant(Matrix(1, 1, 1.0f)));
    adam.ZeroGrad();
    loss.Backward();
    adam.Step();
  }
  // u received no gradient: Adam's decoupled decay only applies with a
  // gradient flowing, so it must be unchanged.
  EXPECT_FLOAT_EQ(u.value()(0, 0), 5.0f);
}

TEST(Sgd, MinimizesQuadratic) {
  ParamSet ps;
  Var w = ps.Create(Matrix(1, 2, 4.0f));
  Sgd sgd(ps.params(), 0.2f);
  for (int i = 0; i < 100; ++i) {
    Var loss = ag::MseLoss(w, Var::Constant(Matrix(1, 2, 1.0f)));
    sgd.ZeroGrad();
    loss.Backward();
    sgd.Step();
  }
  EXPECT_NEAR(w.value()(0, 0), 1.0f, 1e-3f);
}

TEST(GcnEncoder, OutputShape) {
  Graph g = SmallGraph();
  Rng rng(4);
  GcnConfig cfg;
  cfg.dims = {4, 8, 3};
  GcnEncoder enc(cfg, rng);
  Matrix h = enc.Encode(g);
  EXPECT_EQ(h.rows(), 6);
  EXPECT_EQ(h.cols(), 3);
  EXPECT_TRUE(AllFinite(h));
}

TEST(GcnEncoder, DeterministicWithoutDropout) {
  Graph g = SmallGraph();
  Rng rng(5);
  GcnConfig cfg;
  cfg.dims = {4, 8, 3};
  GcnEncoder enc(cfg, rng);
  EXPECT_LT(MaxAbsDiff(enc.Encode(g), enc.Encode(g)), 1e-7f);
}

TEST(GcnEncoder, PropagatesNeighborInformation) {
  // A node with zero features must still get nonzero embedding input
  // through its neighbors' aggregation.
  Graph g = BuildGraph(
      2, {{0, 1}},
      Matrix::FromRows({{1.0f, 1.0f}, {0.0f, 0.0f}}));
  Rng rng(6);
  GcnConfig cfg;
  cfg.dims = {2, 4};
  cfg.bias = false;
  GcnEncoder enc(cfg, rng);
  Matrix h = enc.Encode(g);
  float norm1 = 0.0f;
  for (std::int64_t c = 0; c < 4; ++c) norm1 += std::fabs(h(1, c));
  EXPECT_GT(norm1, 0.0f);
}

TEST(GcnEncoder, TrainsUnderCrossEntropy) {
  Graph g = SmallGraph();
  Rng rng(7);
  GcnConfig cfg;
  cfg.dims = {4, 8, 2};
  GcnEncoder enc(cfg, rng);
  auto adj = std::make_shared<const CsrMatrix>(NormalizedAdjacency(g));
  Adam::Options opts;
  opts.lr = 0.05f;
  Adam adam(enc.params().params(), opts);
  float first = 0.0f, last = 0.0f;
  for (int i = 0; i < 60; ++i) {
    Var logits = enc.Forward(adj, Var::Constant(g.features), rng, true);
    Var loss = ag::SoftmaxCrossEntropy(logits, g.labels);
    if (i == 0) first = loss.value()(0, 0);
    last = loss.value()(0, 0);
    adam.ZeroGrad();
    loss.Backward();
    adam.Step();
  }
  EXPECT_LT(last, first * 0.5f);
}

TEST(GcnEncoder, PreluVariantRuns) {
  Graph g = SmallGraph();
  Rng rng(8);
  GcnConfig cfg;
  cfg.dims = {4, 6};
  cfg.prelu = true;
  cfg.final_activation = true;
  GcnEncoder enc(cfg, rng);
  EXPECT_TRUE(AllFinite(enc.Encode(g)));
  // PReLU slope is a parameter.
  EXPECT_EQ(enc.params().params().size(), 3u);  // W, b, slope
}

TEST(Mlp, OutputShapeAndTraining) {
  Rng rng(9);
  MlpConfig cfg;
  cfg.dims = {4, 16, 2};
  Mlp mlp(cfg, rng);
  Matrix x = Matrix::RandomNormal(20, 4, 0, 1, rng);
  std::vector<std::int64_t> y(20);
  for (int i = 0; i < 20; ++i) y[i] = (x(i, 0) > 0) ? 1 : 0;
  Adam::Options opts;
  opts.lr = 0.05f;
  Adam adam(mlp.params().params(), opts);
  float first = 0.0f, last = 0.0f;
  for (int i = 0; i < 80; ++i) {
    Var logits = mlp.Forward(Var::Constant(x), rng, true);
    EXPECT_EQ(logits.cols(), 2);
    Var loss = ag::SoftmaxCrossEntropy(logits, y);
    if (i == 0) first = loss.value()(0, 0);
    last = loss.value()(0, 0);
    adam.ZeroGrad();
    loss.Backward();
    adam.Step();
  }
  EXPECT_LT(last, first * 0.5f);
}

TEST(GcnEncoder, LayerCountMatchesDims) {
  Rng rng(10);
  GcnConfig cfg;
  cfg.dims = {4, 8, 8, 8, 2};
  GcnEncoder enc(cfg, rng);
  EXPECT_EQ(enc.num_layers(), 4);
}

}  // namespace
}  // namespace e2gcl
