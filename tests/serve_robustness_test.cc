// Serving-path robustness: deadlines fail fast while the flusher is
// wedged, admission control sheds load at the queue watermark, degraded
// TopK answers are flagged and exactly the approximate-scan result,
// corrupted cache rows are detected and self-repaired, shutdown drains
// deterministically, and hot checkpoint reloads never tear an answer —
// every response is bit-identical to the model generation it is tagged
// with. Registered as a TSAN/ASAN target in check_sanitizers.sh; every
// test uses fault-injection gates, never sleeps, for determinism.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <numeric>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "graph/generators.h"
#include "io/checkpoint.h"
#include "nn/gcn.h"
#include "serve/embedding_server.h"
#include "serve/quantized_table.h"
#include "serve/serve_status.h"
#include "tensor/simd/simd.h"

namespace e2gcl {
namespace {

Graph ServeGraph(std::uint64_t seed = 7) {
  SbmSpec spec;
  spec.num_nodes = 120;
  spec.num_classes = 3;
  spec.feature_dim = 16;
  spec.avg_degree = 6;
  spec.informative_dims_per_class = 4;
  return GenerateSbm(spec, seed);
}

GcnConfig ServeEncoderConfig(const Graph& g) {
  GcnConfig cfg;
  cfg.dims = {g.feature_dim(), 12, 8};
  return cfg;
}

/// A checkpoint holding a freshly initialized (deterministic) encoder;
/// different seeds give different-weight checkpoints with the same
/// fingerprint, the raw material for hot-reload tests.
TrainerCheckpoint MakeCheckpoint(const Graph& g, std::uint64_t seed = 3) {
  Rng rng(seed);
  GcnEncoder encoder(ServeEncoderConfig(g), rng);
  TrainerCheckpoint ckpt;
  ckpt.epoch = 0;
  ckpt.config_fingerprint = 0xfeedULL;
  ckpt.encoder_params = encoder.params().CloneValues();
  return ckpt;
}

Matrix ReferenceEmbeddings(const Graph& g, const TrainerCheckpoint& ckpt) {
  Rng rng(0);
  GcnEncoder encoder(ServeEncoderConfig(g), rng);
  encoder.params().LoadValues(ckpt.encoder_params);
  return encoder.Encode(g);
}

std::vector<float> RowOf(const Matrix& m, std::int64_t r) {
  return std::vector<float>(m.RowPtr(r), m.RowPtr(r) + m.cols());
}

/// Two-phase gate wired into ServeFaultInjector::stall_batch: Block()
/// freezes the flusher inside the hook until Release(); the test waits
/// on AwaitBlocked() so "the flusher is wedged mid-batch" is a proven
/// state, not a race. After Release() later batches pass through.
class FlusherGate {
 public:
  void Block() {
    std::unique_lock<std::mutex> lock(mu_);
    blocked_ = true;
    cv_.notify_all();
    cv_.wait(lock, [&] { return released_; });
  }
  void AwaitBlocked() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return blocked_; });
  }
  void Release() {
    std::lock_guard<std::mutex> lock(mu_);
    released_ = true;
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool blocked_ = false;
  bool released_ = false;
};

/// Spins until the server's queue holds exactly `depth` requests (the
/// flusher must be gated for this to be stable).
void AwaitQueueDepth(const EmbeddingServer& server, std::int64_t depth) {
  while (server.queue_depth() < depth) std::this_thread::yield();
}

std::unique_ptr<EmbeddingServer> MakeServer(const Graph& g,
                                            const TrainerCheckpoint& ckpt,
                                            const ServeOptions& opt) {
  std::string error;
  std::unique_ptr<EmbeddingServer> server =
      EmbeddingServer::FromCheckpoint(g, ckpt, opt, &error);
  EXPECT_NE(server, nullptr) << error;
  return server;
}

// --- Deadlines. ------------------------------------------------------------

TEST(ServeDeadline, ExpiresFastWhileFlusherIsStalled) {
  Graph g = ServeGraph();
  TrainerCheckpoint ckpt = MakeCheckpoint(g);
  FlusherGate gate;
  ServeOptions opt;
  opt.max_batch = 1;  // The stalled batch holds exactly the blocker.
  opt.fault_injector.stall_batch = [&](std::int64_t) { gate.Block(); };
  auto server = MakeServer(g, ckpt, opt);

  std::thread blocker([&] { server->GetEmbedding(0); });
  gate.AwaitBlocked();

  // The flusher is provably wedged; a deadlined request must still
  // return, released by its own wait, not by the flusher.
  ServeRequestOptions deadline;
  deadline.deadline_us = 20000;
  EmbeddingResponse response = server->GetEmbedding(1, deadline);
  EXPECT_EQ(response.status, ServeStatus::kDeadlineExceeded);
  EXPECT_FALSE(response.served());
  EXPECT_TRUE(response.row.empty());

  gate.Release();
  blocker.join();
}

TEST(ServeDeadline, ZeroDeadlineBlocksUntilServed) {
  Graph g = ServeGraph();
  TrainerCheckpoint ckpt = MakeCheckpoint(g);
  auto server = MakeServer(g, ckpt, ServeOptions{});
  const Matrix ref = ReferenceEmbeddings(g, ckpt);

  EmbeddingResponse response = server->GetEmbedding(5, ServeRequestOptions{});
  EXPECT_EQ(response.status, ServeStatus::kOk);
  EXPECT_EQ(response.generation, 1u);
  EXPECT_EQ(response.row, RowOf(ref, 5));
}

TEST(ServeDeadline, AbandonedRequestIsDiscardedWithoutBlockingOthers) {
  Graph g = ServeGraph();
  TrainerCheckpoint ckpt = MakeCheckpoint(g);
  FlusherGate gate;
  ServeOptions opt;
  opt.max_batch = 1;
  opt.fault_injector.stall_batch = [&](std::int64_t) { gate.Block(); };
  auto server = MakeServer(g, ckpt, opt);
  const Matrix ref = ReferenceEmbeddings(g, ckpt);

  std::thread blocker([&] { server->GetEmbedding(0); });
  gate.AwaitBlocked();

  // Expire a queued request, then release: the flusher must skip the
  // abandoned entry and keep serving what follows.
  ServeRequestOptions deadline;
  deadline.deadline_us = 1;
  EXPECT_EQ(server->GetEmbedding(1, deadline).status,
            ServeStatus::kDeadlineExceeded);
  gate.Release();
  blocker.join();

  EmbeddingResponse after = server->GetEmbedding(2, ServeRequestOptions{});
  EXPECT_EQ(after.status, ServeStatus::kOk);
  EXPECT_EQ(after.row, RowOf(ref, 2));
}

// --- Admission control / load shedding. ------------------------------------

TEST(ServeAdmission, RejectsAtMaxQueueDepthWatermark) {
  Graph g = ServeGraph();
  TrainerCheckpoint ckpt = MakeCheckpoint(g);
  FlusherGate gate;
  ServeOptions opt;
  opt.max_batch = 1;
  opt.max_queue_depth = 2;
  opt.fault_injector.stall_batch = [&](std::int64_t) { gate.Block(); };
  auto server = MakeServer(g, ckpt, opt);

  std::thread blocker([&] { server->GetEmbedding(0); });
  gate.AwaitBlocked();
  // Saturate the queue behind the wedged flusher.
  std::vector<std::thread> queued;
  for (int i = 1; i <= 2; ++i) {
    queued.emplace_back([&, i] {
      EXPECT_EQ(server->GetEmbedding(i, ServeRequestOptions{}).status,
                ServeStatus::kOk);
    });
  }
  AwaitQueueDepth(*server, 2);

  // The watermark is hit: shed, don't queue. Rejected at the door, so
  // no generation was ever pinned.
  EmbeddingResponse shed = server->GetEmbedding(50, ServeRequestOptions{});
  EXPECT_EQ(shed.status, ServeStatus::kOverloaded);
  EXPECT_EQ(shed.generation, 0u);
  EXPECT_TRUE(ServeStatusRetryable(shed.status));

  gate.Release();
  blocker.join();
  for (std::thread& t : queued) t.join();
}

TEST(ServeAdmission, DegradesTopKUnderPressureToExactApproximateScan) {
  Graph g = ServeGraph();
  TrainerCheckpoint ckpt = MakeCheckpoint(g);
  FlusherGate gate;
  ServeOptions opt;
  opt.max_batch = 1;
  opt.quantize_int8 = true;
  opt.rescore_factor = 4;
  opt.degrade_watermark = 1;
  opt.fault_injector.stall_batch = [&](std::int64_t) { gate.Block(); };
  auto server = MakeServer(g, ckpt, opt);
  const Matrix ref = ReferenceEmbeddings(g, ckpt);
  const std::shared_ptr<const ModelState> state = server->state();

  std::thread blocker([&] { server->GetEmbedding(0); });
  gate.AwaitBlocked();
  std::thread queued([&] { server->GetEmbedding(1); });
  AwaitQueueDepth(*server, 1);

  // Admitted at queue depth 1 >= degrade_watermark: served approximate.
  constexpr std::int64_t kQuery = 7;
  constexpr std::int64_t kK = 5;
  std::thread degraded_client([&] {
    TopKResponse response =
        server->TopKSimilar(kQuery, kK, ServeRequestOptions{});
    EXPECT_EQ(response.status, ServeStatus::kDegraded);
    EXPECT_TRUE(response.served());
    EXPECT_EQ(response.generation, 1u);

    // A degraded answer is exactly the int8 approximate scan — computed
    // here from the pinned generation's own table, no rescore.
    std::vector<std::int8_t> qcodes;
    const float qscale =
        state->quantized.QuantizeQuery(ref.RowPtr(kQuery), &qcodes);
    std::vector<float> approx;
    state->quantized.ScoreAll(qcodes.data(), qscale, &approx);
    std::vector<std::int64_t> order;
    for (std::int64_t i = 0; i < g.num_nodes; ++i) {
      if (i != kQuery) order.push_back(i);
    }
    std::partial_sort(order.begin(), order.begin() + kK, order.end(),
                      [&](std::int64_t x, std::int64_t y) {
                        const float sx = approx[static_cast<std::size_t>(x)];
                        const float sy = approx[static_cast<std::size_t>(y)];
                        if (sx != sy) return sx > sy;
                        return x < y;
                      });
    ASSERT_EQ(response.result.nodes.size(), static_cast<std::size_t>(kK));
    for (std::int64_t i = 0; i < kK; ++i) {
      EXPECT_EQ(response.result.nodes[static_cast<std::size_t>(i)],
                order[static_cast<std::size_t>(i)]);
      EXPECT_EQ(response.result.scores[static_cast<std::size_t>(i)],
                approx[static_cast<std::size_t>(
                    order[static_cast<std::size_t>(i)])]);
    }
  });
  AwaitQueueDepth(*server, 2);

  gate.Release();
  blocker.join();
  queued.join();
  degraded_client.join();

  // Off pressure, the same request is exact again.
  TopKResponse exact = server->TopKSimilar(kQuery, kK, ServeRequestOptions{});
  EXPECT_EQ(exact.status, ServeStatus::kOk);
  for (std::size_t i = 0; i < exact.result.nodes.size(); ++i) {
    EXPECT_EQ(exact.result.scores[i],
              simd::Dot(ref.RowPtr(kQuery), ref.RowPtr(exact.result.nodes[i]),
                        ref.cols()));
  }
}

TEST(ServeAdmission, DegradationRespectsAllowDegradedFalse) {
  Graph g = ServeGraph();
  TrainerCheckpoint ckpt = MakeCheckpoint(g);
  FlusherGate gate;
  ServeOptions opt;
  opt.max_batch = 1;
  opt.quantize_int8 = true;
  opt.degrade_watermark = 1;
  opt.fault_injector.stall_batch = [&](std::int64_t) { gate.Block(); };
  auto server = MakeServer(g, ckpt, opt);

  std::thread blocker([&] { server->GetEmbedding(0); });
  gate.AwaitBlocked();
  std::thread queued([&] { server->GetEmbedding(1); });
  AwaitQueueDepth(*server, 1);

  ServeRequestOptions exact_only;
  exact_only.allow_degraded = false;
  std::thread exact_client([&] {
    EXPECT_EQ(server->TopKSimilar(7, 5, exact_only).status, ServeStatus::kOk);
  });
  AwaitQueueDepth(*server, 2);

  gate.Release();
  blocker.join();
  queued.join();
  exact_client.join();
}

// --- Retry helper. ---------------------------------------------------------

TEST(RetryWithBackoff, RetriesTransientRejectionsThenSucceeds) {
  int calls = 0;
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.initial_backoff_us = 1;
  EmbeddingResponse response = RetryWithBackoff(policy, [&] {
    ++calls;
    EmbeddingResponse r;
    r.status = calls < 3 ? ServeStatus::kOverloaded : ServeStatus::kOk;
    return r;
  });
  EXPECT_EQ(response.status, ServeStatus::kOk);
  EXPECT_EQ(calls, 3);
}

TEST(RetryWithBackoff, StopsAtMaxAttemptsAndOnNonRetryableStatus) {
  int calls = 0;
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff_us = 1;
  EmbeddingResponse response = RetryWithBackoff(policy, [&] {
    ++calls;
    EmbeddingResponse r;
    r.status = ServeStatus::kOverloaded;
    return r;
  });
  EXPECT_EQ(response.status, ServeStatus::kOverloaded);
  EXPECT_EQ(calls, 4);

  calls = 0;
  response = RetryWithBackoff(policy, [&] {
    ++calls;
    EmbeddingResponse r;
    r.status = ServeStatus::kDeadlineExceeded;  // Caller's call, not ours.
    return r;
  });
  EXPECT_EQ(calls, 1);
}

TEST(RetryWithBackoff, TotalDeadlineBoundsRetryBudget) {
  int calls = 0;
  RetryPolicy policy;
  policy.max_attempts = 100;
  policy.initial_backoff_us = 100;
  policy.max_backoff_us = 100;
  policy.total_deadline_us = 250;
  const auto start = std::chrono::steady_clock::now();
  EmbeddingResponse response = RetryWithBackoff(policy, [&] {
    ++calls;
    EmbeddingResponse r;
    r.status = ServeStatus::kOverloaded;
    return r;
  });
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(response.status, ServeStatus::kOverloaded);
  // Every backoff sleeps >= 100us, so the 250us budget admits at most
  // two of them — nowhere near the 100-attempt unbounded schedule.
  EXPECT_GE(calls, 1);
  EXPECT_LE(calls, 3);
  // And the budget bounds wall clock (very generous ceiling so
  // scheduler jitter cannot flake the test).
  EXPECT_LT(
      std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count(),
      1000000);
}

TEST(RetryWithBackoff, TerminalStatusesNeverRetry) {
  for (ServeStatus terminal :
       {ServeStatus::kShutdown, ServeStatus::kInvalidArgument}) {
    int calls = 0;
    RetryPolicy policy;
    policy.max_attempts = 8;
    policy.initial_backoff_us = 1;
    EmbeddingResponse response = RetryWithBackoff(policy, [&] {
      ++calls;
      EmbeddingResponse r;
      r.status = terminal;
      return r;
    });
    EXPECT_EQ(response.status, terminal);
    EXPECT_EQ(calls, 1);
  }
}

TEST(RetryWithBackoff, DeadlineIsRespectedAcrossGrowingBackoffs) {
  // Backoff doubles 500 -> 1000 -> 2000; the 2ms budget stops the
  // schedule before the third sleep even though max_attempts allows
  // three orders of magnitude more calls.
  int calls = 0;
  RetryPolicy policy;
  policy.max_attempts = 1000;
  policy.initial_backoff_us = 500;
  policy.max_backoff_us = 4000;
  policy.total_deadline_us = 2000;
  EmbeddingResponse response = RetryWithBackoff(policy, [&] {
    ++calls;
    EmbeddingResponse r;
    r.status = ServeStatus::kOverloaded;
    return r;
  });
  EXPECT_EQ(response.status, ServeStatus::kOverloaded);
  EXPECT_GE(calls, 1);
  EXPECT_LE(calls, 3);
}

// --- Cache corruption (checksummed rows). ----------------------------------

TEST(ServeCorruption, CorruptedCacheRowIsDetectedAndRecomputed) {
  Graph g = ServeGraph();
  TrainerCheckpoint ckpt = MakeCheckpoint(g);
  std::atomic<int> corruptions{0};
  ServeOptions opt;
  // Corrupt node 9's cached copy exactly once, right after first Put.
  opt.fault_injector.corrupt_row_after_put = [&](std::int64_t node) {
    if (node != 9) return false;
    int expected = 0;
    return corruptions.compare_exchange_strong(expected, 1);
  };
  auto server = MakeServer(g, ckpt, opt);
  const Matrix ref = ReferenceEmbeddings(g, ckpt);
  const std::shared_ptr<const ModelState> state = server->state();

  // First serve computed the row before the cached copy was corrupted.
  EXPECT_EQ(server->GetEmbedding(9), RowOf(ref, 9));
  EXPECT_EQ(state->cache->corrupt_dropped(), 0u);

  // Second serve hits the poisoned entry: the checksum drops it and the
  // recompute self-repairs — the caller still gets the exact row.
  EXPECT_EQ(server->GetEmbedding(9), RowOf(ref, 9));
  EXPECT_EQ(state->cache->corrupt_dropped(), 1u);

  // Third serve is a clean cache hit of the repaired entry.
  EXPECT_EQ(server->GetEmbedding(9), RowOf(ref, 9));
  EXPECT_EQ(state->cache->corrupt_dropped(), 1u);
}

// --- Shutdown drain. -------------------------------------------------------

TEST(ServeShutdown, DrainsQueuedRequestsAndRejectsNewOnes) {
  Graph g = ServeGraph();
  TrainerCheckpoint ckpt = MakeCheckpoint(g);
  FlusherGate gate;
  ServeOptions opt;
  opt.max_batch = 1;
  opt.fault_injector.stall_batch = [&](std::int64_t) { gate.Block(); };
  auto server = MakeServer(g, ckpt, opt);
  const Matrix ref = ReferenceEmbeddings(g, ckpt);

  std::thread blocker([&] {
    EXPECT_EQ(server->GetEmbedding(0), RowOf(ref, 0));
  });
  gate.AwaitBlocked();
  std::vector<std::thread> queued;
  for (int i = 1; i <= 3; ++i) {
    queued.emplace_back([&, i] {
      // Admitted before shutdown: must be drained, not dropped.
      EmbeddingResponse r = server->GetEmbedding(i, ServeRequestOptions{});
      EXPECT_EQ(r.status, ServeStatus::kOk);
      EXPECT_EQ(r.row, RowOf(ref, i));
    });
  }
  AwaitQueueDepth(*server, 3);

  server->BeginShutdown();
  // Admission is closed immediately, even while the drain is pending.
  EXPECT_EQ(server->GetEmbedding(7, ServeRequestOptions{}).status,
            ServeStatus::kShutdown);

  gate.Release();
  blocker.join();
  for (std::thread& t : queued) t.join();
  EXPECT_EQ(server->GetEmbedding(8, ServeRequestOptions{}).status,
            ServeStatus::kShutdown);
}

TEST(ServeShutdown, DestructorNeverBlocksOnQueuedCallers) {
  Graph g = ServeGraph();
  TrainerCheckpoint ckpt = MakeCheckpoint(g);
  FlusherGate gate;
  ServeOptions opt;
  opt.max_batch = 1;
  opt.fault_injector.stall_batch = [&](std::int64_t) { gate.Block(); };
  auto server = MakeServer(g, ckpt, opt);

  std::thread blocker([&] { server->GetEmbedding(0); });
  gate.AwaitBlocked();
  std::thread queued([&] {
    EXPECT_TRUE(ServeStatusServed(
        server->GetEmbedding(1, ServeRequestOptions{}).status));
  });
  AwaitQueueDepth(*server, 1);

  gate.Release();
  // Destroying the server with callers still in flight must drain them
  // (both threads join below because their requests completed).
  server.reset();
  blocker.join();
  queued.join();
}

// --- Hot checkpoint reload. ------------------------------------------------

TEST(ServeReload, SwapsGenerationsWithBitIdenticalAnswersPerPhase) {
  Graph g = ServeGraph();
  TrainerCheckpoint ckpt_a = MakeCheckpoint(g, /*seed=*/3);
  TrainerCheckpoint ckpt_b = MakeCheckpoint(g, /*seed=*/11);
  const Matrix ref_a = ReferenceEmbeddings(g, ckpt_a);
  const Matrix ref_b = ReferenceEmbeddings(g, ckpt_b);
  ASSERT_NE(RowOf(ref_a, 0), RowOf(ref_b, 0));

  ServeOptions opt;
  opt.quantize_int8 = true;
  auto server = MakeServer(g, ckpt_a, opt);
  EXPECT_EQ(server->generation(), 1u);

  // Phase 1: generation 1 answers, cold then cached.
  for (std::int64_t node : {4, 9, 4}) {
    EmbeddingResponse r = server->GetEmbedding(node, ServeRequestOptions{});
    EXPECT_EQ(r.status, ServeStatus::kOk);
    EXPECT_EQ(r.generation, 1u);
    EXPECT_EQ(r.row, RowOf(ref_a, node));
  }

  std::string error;
  ASSERT_EQ(server->ReloadCheckpoint(ckpt_b, &error), ServeStatus::kOk)
      << error;
  EXPECT_EQ(server->generation(), 2u);

  // Phase 2: every answer is the new model's — including node 4, which
  // the old generation had cached (the reload started cold).
  for (std::int64_t node : {4, 9, 77}) {
    EmbeddingResponse r = server->GetEmbedding(node, ServeRequestOptions{});
    EXPECT_EQ(r.status, ServeStatus::kOk);
    EXPECT_EQ(r.generation, 2u);
    EXPECT_EQ(r.row, RowOf(ref_b, node));
  }
  ScoreResponse s = server->ScoreLink(3, 8, ServeRequestOptions{});
  EXPECT_EQ(s.generation, 2u);
  EXPECT_EQ(s.score, simd::Dot(ref_b.RowPtr(3), ref_b.RowPtr(8),
                               ref_b.cols()));
  TopKResponse t = server->TopKSimilar(3, 5, ServeRequestOptions{});
  EXPECT_EQ(t.generation, 2u);
  for (std::size_t i = 0; i < t.result.nodes.size(); ++i) {
    EXPECT_EQ(t.result.scores[i],
              simd::Dot(ref_b.RowPtr(3), ref_b.RowPtr(t.result.nodes[i]),
                        ref_b.cols()));
  }
}

TEST(ServeReload, InFlightRequestsStayPinnedToAdmissionGeneration) {
  Graph g = ServeGraph();
  TrainerCheckpoint ckpt_a = MakeCheckpoint(g, /*seed=*/3);
  TrainerCheckpoint ckpt_b = MakeCheckpoint(g, /*seed=*/11);
  const Matrix ref_a = ReferenceEmbeddings(g, ckpt_a);
  const Matrix ref_b = ReferenceEmbeddings(g, ckpt_b);

  FlusherGate flusher_gate;
  FlusherGate reload_gate;
  ServeOptions opt;
  opt.max_batch = 1;
  opt.fault_injector.stall_batch = [&](std::int64_t) {
    flusher_gate.Block();
  };
  opt.fault_injector.before_reload_swap = [&](std::uint64_t) {
    reload_gate.Block();
  };
  auto server = MakeServer(g, ckpt_a, opt);

  std::thread blocker([&] { server->GetEmbedding(0); });
  flusher_gate.AwaitBlocked();
  // Admitted under generation 1, still queued when the swap happens.
  std::thread pinned([&] {
    EmbeddingResponse r = server->GetEmbedding(33, ServeRequestOptions{});
    EXPECT_EQ(r.status, ServeStatus::kOk);
    EXPECT_EQ(r.generation, 1u);
    EXPECT_EQ(r.row, RowOf(ref_a, 33));
  });
  AwaitQueueDepth(*server, 1);

  std::thread reloader([&] {
    EXPECT_EQ(server->ReloadCheckpoint(ckpt_b), ServeStatus::kOk);
  });
  reload_gate.AwaitBlocked();
  // The new generation is fully built but not yet swapped in; a second
  // reload attempt must be turned away, not stacked.
  EXPECT_EQ(server->ReloadCheckpoint(ckpt_b), ServeStatus::kReloading);
  reload_gate.Release();
  reloader.join();

  flusher_gate.Release();
  blocker.join();
  pinned.join();

  // Post-swap admissions see generation 2.
  EmbeddingResponse after = server->GetEmbedding(33, ServeRequestOptions{});
  EXPECT_EQ(after.generation, 2u);
  EXPECT_EQ(after.row, RowOf(ref_b, 33));
}

TEST(ServeReload, RejectsInvalidCheckpointWithoutTouchingServing) {
  Graph g = ServeGraph();
  TrainerCheckpoint ckpt = MakeCheckpoint(g);
  ServeOptions opt;
  opt.expected_fingerprint = 0xfeedULL;
  auto server = MakeServer(g, ckpt, opt);
  const Matrix ref = ReferenceEmbeddings(g, ckpt);

  TrainerCheckpoint wrong = MakeCheckpoint(g, /*seed=*/11);
  wrong.config_fingerprint = 0xdeadULL;
  std::string error;
  EXPECT_EQ(server->ReloadCheckpoint(wrong, &error),
            ServeStatus::kInvalidArgument);
  EXPECT_NE(error.find("fingerprint"), std::string::npos) << error;
  EXPECT_EQ(server->generation(), 1u);
  EXPECT_EQ(server->GetEmbedding(12), RowOf(ref, 12));

  // A second, valid reload still goes through (the gate was released).
  TrainerCheckpoint good = MakeCheckpoint(g, /*seed=*/11);
  EXPECT_EQ(server->ReloadCheckpoint(good), ServeStatus::kOk);
  EXPECT_EQ(server->generation(), 2u);
}

TEST(ServeReload, ConcurrentMixedClientsAlwaysMatchTaggedGeneration) {
  Graph g = ServeGraph();
  TrainerCheckpoint ckpt_a = MakeCheckpoint(g, /*seed=*/3);
  TrainerCheckpoint ckpt_b = MakeCheckpoint(g, /*seed=*/11);
  // Generations alternate: odd = A (initial load), even = B.
  const Matrix ref_a = ReferenceEmbeddings(g, ckpt_a);
  const Matrix ref_b = ReferenceEmbeddings(g, ckpt_b);
  const auto ref_of = [&](std::uint64_t gen) -> const Matrix& {
    return gen % 2 == 1 ? ref_a : ref_b;
  };

  ServeOptions opt;
  opt.quantize_int8 = true;
  opt.cache_capacity = 64;  // Small: keeps cold and cached paths mixed.
  auto server = MakeServer(g, ckpt_a, opt);

  constexpr int kClients = 4;
  constexpr int kQueriesPerClient = 120;
  std::atomic<std::int64_t> failed{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int q = 0; q < kQueriesPerClient; ++q) {
        const std::int64_t node = (c * 37 + q * 11) % g.num_nodes;
        switch (q % 3) {
          case 0: {
            EmbeddingResponse r =
                server->GetEmbedding(node, ServeRequestOptions{});
            if (r.status != ServeStatus::kOk) { ++failed; break; }
            const Matrix& ref = ref_of(r.generation);
            if (r.row != RowOf(ref, node)) ++failed;
            break;
          }
          case 1: {
            const std::int64_t other = (node + 13) % g.num_nodes;
            ScoreResponse r =
                server->ScoreLink(node, other, ServeRequestOptions{});
            if (r.status != ServeStatus::kOk) { ++failed; break; }
            const Matrix& ref = ref_of(r.generation);
            if (r.score != simd::Dot(ref.RowPtr(node), ref.RowPtr(other),
                                     ref.cols())) {
              ++failed;
            }
            break;
          }
          case 2: {
            TopKResponse r =
                server->TopKSimilar(node, 5, ServeRequestOptions{});
            if (r.status != ServeStatus::kOk) { ++failed; break; }
            // Scores must be exact dot products within ONE generation —
            // a torn reload would mix models and break equality.
            const Matrix& ref = ref_of(r.generation);
            for (std::size_t i = 0; i < r.result.nodes.size(); ++i) {
              if (r.result.scores[i] !=
                  simd::Dot(ref.RowPtr(node), ref.RowPtr(r.result.nodes[i]),
                            ref.cols())) {
                ++failed;
              }
            }
            break;
          }
        }
      }
    });
  }

  // Mid-stream reloads while the clients hammer the server.
  for (int r = 0; r < 4; ++r) {
    const TrainerCheckpoint& next = (r % 2 == 0) ? ckpt_b : ckpt_a;
    ASSERT_EQ(server->ReloadCheckpoint(next), ServeStatus::kOk);
  }
  for (std::thread& t : clients) t.join();

  // Zero failed queries across every mid-stream swap.
  EXPECT_EQ(failed.load(), 0);
  EXPECT_EQ(server->generation(), 5u);
}

}  // namespace
}  // namespace e2gcl
