// Sharded / out-of-core layer: partition determinism + balance,
// GraphStore round-trips and corruption rejection, streamed-SpMM
// bit-identity, halo-ball correctness, budget apportionment, and the
// merge-determinism suite — {1,2,4} shards x {1,2,7} threads
// bit-identical per shard count, resident == out-of-core, and sharded
// resume bit-identical from a mid-run checkpoint.

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "core/node_selector.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "parallel/thread_pool.h"
#include "shard/graph_store.h"
#include "shard/halo.h"
#include "shard/partition.h"
#include "shard/sharded_trainer.h"
#include "tensor/csr.h"
#include "tensor/matrix.h"

namespace e2gcl {
namespace {

namespace fs = std::filesystem;

Graph ShardGraph(std::int64_t nodes = 360, std::uint64_t seed = 7) {
  SbmSpec spec;
  spec.num_nodes = nodes;
  spec.num_classes = 4;
  spec.feature_dim = 16;
  spec.avg_degree = 6;
  spec.informative_dims_per_class = 4;
  return GenerateSbm(spec, seed);
}

ShardedConfig SmallShardedConfig(int shards) {
  ShardedConfig cfg;
  cfg.num_shards = shards;
  cfg.halo_hops = 1;
  cfg.base.epochs = 2;
  cfg.base.hidden_dim = 12;
  cfg.base.embed_dim = 8;
  cfg.base.batch_size = 48;
  cfg.base.node_ratio = 0.4;
  cfg.base.selector.num_clusters = 6;
  cfg.base.selector.sample_size = 24;
  cfg.base.selector.auto_sample_size = false;
  cfg.base.seed = 11;
  return cfg;
}

class ShardTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = (fs::temp_directory_path() /
            ("e2gcl_shard_" + std::string(info->name()) + "_" +
             std::to_string(::getpid())))
               .string();
    fs::remove_all(dir_);
    threads_before_ = GetNumThreads();
  }
  void TearDown() override {
    SetNumThreads(threads_before_);
    fs::remove_all(dir_);
  }

  std::string dir_;
  int threads_before_ = 1;
};

// --- Budget apportionment + merge policy. --------------------------------

TEST(ApportionBudget, SumsExactlyAndRespectsShardSizes) {
  std::vector<std::int64_t> sizes = {100, 50, 25};
  std::vector<std::int64_t> parts = ApportionBudget(70, sizes);
  ASSERT_EQ(parts.size(), sizes.size());
  std::int64_t sum = 0;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    EXPECT_GE(parts[i], 0);
    EXPECT_LE(parts[i], sizes[i]);
    sum += parts[i];
  }
  EXPECT_EQ(sum, 70);
  // Proportional shares 40/20/10 are exact here.
  EXPECT_EQ(parts[0], 40);
  EXPECT_EQ(parts[1], 20);
  EXPECT_EQ(parts[2], 10);

  // Budget above the pool clamps to the pool.
  parts = ApportionBudget(1000, sizes);
  EXPECT_EQ(parts[0] + parts[1] + parts[2], 175);
  EXPECT_EQ(parts[0], 100);

  // Tiny shards cap their floor at the shard size and the remainder
  // flows to shards with headroom.
  parts = ApportionBudget(5, {1, 1, 100});
  EXPECT_EQ(parts[0] + parts[1] + parts[2], 5);
  EXPECT_LE(parts[0], 1);
  EXPECT_LE(parts[1], 1);
}

TEST(ApportionBudget, LargestRemainderTiesBreakTowardLowerShardId) {
  // Equal sizes, odd budget: both shards have remainder 0.5; the
  // documented policy hands the leftover unit to the lower id.
  std::vector<std::int64_t> parts = ApportionBudget(3, {10, 10});
  EXPECT_EQ(parts[0], 2);
  EXPECT_EQ(parts[1], 1);

  parts = ApportionBudget(5, {8, 8, 8, 8});
  EXPECT_EQ(parts[0], 2);
  EXPECT_EQ(parts[1], 1);
  EXPECT_EQ(parts[2], 1);
  EXPECT_EQ(parts[3], 1);
}

TEST(MergeShardSelections, ConcatenatesInShardOrderAndMapsToGlobalIds) {
  // Shard 0 core = {3, 9, 14}, shard 1 core = {0, 7}.
  std::vector<std::vector<std::int64_t>> cores = {{3, 9, 14}, {0, 7}};
  std::vector<SelectionResult> per_shard(2);
  per_shard[0].nodes = {2, 0};  // local -> global {14, 3}, order kept
  per_shard[0].weights = {2.0f, 1.0f};
  per_shard[0].representativity = 4.0;
  per_shard[0].seconds = 0.5;
  per_shard[1].nodes = {1};  // local -> global {7}
  per_shard[1].weights = {2.0f};
  per_shard[1].representativity = 1.0;
  per_shard[1].seconds = 0.25;

  SelectionResult merged = MergeShardSelections(per_shard, cores);
  ASSERT_EQ(merged.nodes.size(), 3u);
  EXPECT_EQ(merged.nodes[0], 14);
  EXPECT_EQ(merged.nodes[1], 3);
  EXPECT_EQ(merged.nodes[2], 7);
  ASSERT_EQ(merged.weights.size(), 3u);
  EXPECT_FLOAT_EQ(merged.weights[0], 2.0f);
  EXPECT_FLOAT_EQ(merged.weights[1], 1.0f);
  EXPECT_FLOAT_EQ(merged.weights[2], 2.0f);
  // Core-size-weighted mean: (3 * 4.0 + 2 * 1.0) / 5.
  EXPECT_DOUBLE_EQ(merged.representativity, 14.0 / 5.0);
  EXPECT_DOUBLE_EQ(merged.seconds, 0.75);
}

// --- Partitioner. ---------------------------------------------------------

TEST(PartitionGraph, DeterministicBalancedAndCountsCutExactly) {
  Graph g = ShardGraph();
  PartitionOptions opt;
  opt.num_shards = 4;
  opt.seed = 3;

  Partition p = PartitionGraph(GraphAdjacency(g), opt);
  Partition p2 = PartitionGraph(GraphAdjacency(g), opt);
  EXPECT_EQ(p.shard_of, p2.shard_of);
  EXPECT_EQ(p.cut_edges, p2.cut_edges);

  ASSERT_EQ(p.num_shards, 4);
  ASSERT_EQ(static_cast<std::int64_t>(p.shard_of.size()), g.num_nodes);
  EXPECT_EQ(p.total_edges, g.num_edges());

  // Node-count balance: within the documented cap.
  const std::int64_t cap =
      static_cast<std::int64_t>(
          (static_cast<double>(g.num_nodes) / opt.num_shards) *
          (1.0 + opt.balance_slack)) +
      1;
  std::vector<std::int64_t> counts(4, 0);
  for (std::int32_t s : p.shard_of) {
    ASSERT_GE(s, 0);
    ASSERT_LT(s, 4);
    ++counts[s];
  }
  for (int s = 0; s < 4; ++s) {
    EXPECT_LE(counts[s], cap) << "shard " << s;
    EXPECT_EQ(counts[s],
              static_cast<std::int64_t>(p.shard_nodes[s].size()));
    EXPECT_TRUE(std::is_sorted(p.shard_nodes[s].begin(),
                               p.shard_nodes[s].end()));
  }

  // Reported cut matches a direct recount.
  std::int64_t cut = 0;
  for (std::int64_t v = 0; v < g.num_nodes; ++v) {
    for (std::int32_t u : g.Neighbors(v)) {
      if (u > v && p.shard_of[u] != p.shard_of[v]) ++cut;
    }
  }
  EXPECT_EQ(p.cut_edges, cut);
  EXPECT_GT(p.CutFraction(), 0.0);
  EXPECT_LT(p.CutFraction(), 1.0);
}

TEST(PartitionGraph, SingleShardIsTrivialWithZeroCut) {
  Graph g = ShardGraph(120);
  PartitionOptions opt;
  opt.num_shards = 1;
  Partition p = PartitionGraph(GraphAdjacency(g), opt);
  for (std::int32_t s : p.shard_of) EXPECT_EQ(s, 0);
  EXPECT_EQ(p.cut_edges, 0);
  EXPECT_EQ(static_cast<std::int64_t>(p.shard_nodes[0].size()),
            g.num_nodes);
}

TEST_F(ShardTest, PartitionStorePathMatchesResidentPath) {
  Graph g = ShardGraph();
  ASSERT_TRUE(GraphStore::Write(dir_, g));
  GraphStore store;
  ASSERT_TRUE(store.Open(dir_));

  PartitionOptions opt;
  opt.num_shards = 3;
  opt.seed = 5;
  Partition resident = PartitionGraph(GraphAdjacency(g), opt);
  Partition streamed = PartitionGraph(store, opt);
  EXPECT_EQ(resident.shard_of, streamed.shard_of);
  EXPECT_EQ(resident.cut_edges, streamed.cut_edges);
  EXPECT_EQ(resident.shard_nodes, streamed.shard_nodes);
}

TEST_F(ShardTest, PartitionSaveLoadRoundTripsAndRejectsCorruption) {
  Graph g = ShardGraph(200);
  PartitionOptions opt;
  opt.num_shards = 3;
  Partition p = PartitionGraph(GraphAdjacency(g), opt);

  fs::create_directories(dir_);
  const std::string path = dir_ + "/part.e2gcl";
  ASSERT_TRUE(SavePartition(path, p));

  Partition loaded;
  ASSERT_TRUE(LoadPartition(path, &loaded));
  EXPECT_EQ(loaded.num_shards, p.num_shards);
  EXPECT_EQ(loaded.shard_of, p.shard_of);
  EXPECT_EQ(loaded.cut_edges, p.cut_edges);
  EXPECT_EQ(loaded.total_edges, p.total_edges);
  EXPECT_EQ(loaded.shard_nodes, p.shard_nodes);

  // Flip one byte in the middle: the CRC-checked state file must refuse.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(static_cast<std::streamoff>(fs::file_size(path) / 2));
    char byte = 0;
    f.read(&byte, 1);
    f.seekp(static_cast<std::streamoff>(fs::file_size(path) / 2));
    byte = static_cast<char>(byte ^ 0x5a);
    f.write(&byte, 1);
  }
  Partition corrupt;
  EXPECT_FALSE(LoadPartition(path, &corrupt));
}

// --- GraphStore. ----------------------------------------------------------

TEST_F(ShardTest, GraphStoreRoundTripsStructureFeaturesAndLabels) {
  Graph g = ShardGraph(250);
  ASSERT_TRUE(GraphStore::Write(dir_, g));
  GraphStore store;
  ASSERT_TRUE(store.Open(dir_));

  EXPECT_EQ(store.num_nodes(), g.num_nodes);
  EXPECT_EQ(store.feature_dim(), g.feature_dim());
  EXPECT_EQ(store.num_classes(), g.num_classes);
  EXPECT_TRUE(store.has_labels());
  EXPECT_EQ(store.row_ptr(), g.row_ptr);

  std::vector<std::int32_t> cols;
  ASSERT_TRUE(store.ReadCols(0, g.num_nodes, &cols));
  EXPECT_EQ(cols, g.col);

  // Partial row range.
  ASSERT_TRUE(store.ReadCols(10, 20, &cols));
  EXPECT_EQ(cols, std::vector<std::int32_t>(g.col.begin() + g.row_ptr[10],
                                            g.col.begin() + g.row_ptr[20]));

  // Non-consecutive adjacency gather.
  std::vector<std::int64_t> rows = {0, 3, 4, 5, 17, 249};
  std::vector<std::int32_t> gcols;
  std::vector<std::int64_t> offsets;
  ASSERT_TRUE(store.GatherAdjacency(rows, &gcols, &offsets));
  ASSERT_EQ(offsets.size(), rows.size() + 1);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const std::int64_t v = rows[i];
    ASSERT_EQ(offsets[i + 1] - offsets[i], g.Degree(v));
    for (std::int64_t j = 0; j < g.Degree(v); ++j) {
      EXPECT_EQ(gcols[offsets[i] + j], g.col[g.row_ptr[v] + j]);
    }
  }

  // Feature + label gathers.
  std::vector<std::int64_t> nodes = {1, 7, 100, 248};
  Matrix feats;
  ASSERT_TRUE(store.ReadFeatureRows(nodes, &feats));
  ASSERT_EQ(feats.rows(), static_cast<std::int64_t>(nodes.size()));
  EXPECT_TRUE(feats == GatherRows(g.features, nodes));
  std::vector<std::int64_t> labels;
  ASSERT_TRUE(store.ReadLabels(nodes, &labels));
  ASSERT_EQ(labels.size(), nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    EXPECT_EQ(labels[i], g.labels[nodes[i]]);
  }
}

TEST_F(ShardTest, GraphStoreOpenRejectsTruncatedBin) {
  Graph g = ShardGraph(150);
  ASSERT_TRUE(GraphStore::Write(dir_, g));
  const std::string col_path = dir_ + "/col.bin";
  fs::resize_file(col_path, fs::file_size(col_path) - 4);
  GraphStore store;
  EXPECT_FALSE(store.Open(dir_));
}

TEST_F(ShardTest, LoadInducedSubgraphMatchesResidentInducedSubgraph) {
  Graph g = ShardGraph(300);
  ASSERT_TRUE(GraphStore::Write(dir_, g));
  GraphStore store;
  ASSERT_TRUE(store.Open(dir_));

  // Every third node plus a dense run: mixes isolated picks and runs.
  std::vector<std::int64_t> nodes;
  for (std::int64_t v = 0; v < g.num_nodes; v += 3) nodes.push_back(v);
  for (std::int64_t v = 100; v < 120; ++v) nodes.push_back(v);
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());

  Graph resident = InducedSubgraph(g, nodes);
  Graph streamed;
  ASSERT_TRUE(store.LoadInducedSubgraph(nodes, &streamed));
  EXPECT_EQ(streamed.num_nodes, resident.num_nodes);
  EXPECT_EQ(streamed.row_ptr, resident.row_ptr);
  EXPECT_EQ(streamed.col, resident.col);
  EXPECT_TRUE(streamed.features == resident.features);
  EXPECT_EQ(streamed.labels, resident.labels);
  EXPECT_EQ(streamed.num_classes, resident.num_classes);
}

// --- Streamed normalized SpMM. -------------------------------------------

TEST_F(ShardTest, StreamedNormalizedSpmmBitIdenticalToResident) {
  Graph g = ShardGraph(280);
  Rng rng(19);
  Matrix b(g.num_nodes, 9);
  for (std::int64_t i = 0; i < b.rows() * b.cols(); ++i) {
    b.data()[i] = rng.Uniform() - 0.5f;
  }
  const Matrix expected = Spmm(NormalizedAdjacency(g), b);

  GraphAdjacency adj(g);
  for (std::int64_t chunk : {std::int64_t{1}, std::int64_t{3},
                             std::int64_t{64}, std::int64_t{1} << 16}) {
    EXPECT_TRUE(StreamedNormalizedSpmm(adj, b, chunk) == expected)
        << "chunk " << chunk;
  }

  // Out-of-core path and thread invariance.
  ASSERT_TRUE(GraphStore::Write(dir_, g));
  GraphStore store;
  ASSERT_TRUE(store.Open(dir_));
  for (int threads : {1, 7}) {
    SetNumThreads(threads);
    EXPECT_TRUE(StreamedNormalizedSpmm(store, b, 37) == expected)
        << "threads " << threads;
  }
}

// --- Halo balls. ----------------------------------------------------------

TEST_F(ShardTest, HaloBallMatchesKHopUnionOfCore) {
  Graph g = ShardGraph(240);
  PartitionOptions opt;
  opt.num_shards = 3;
  Partition p = PartitionGraph(GraphAdjacency(g), opt);

  for (int hops : {0, 1, 2}) {
    for (int shard = 0; shard < 3; ++shard) {
      std::vector<std::int64_t> ball =
          HaloBallNodes(GraphAdjacency(g), p, shard, hops);
      std::set<std::int64_t> expect;
      for (std::int64_t v : p.shard_nodes[shard]) {
        for (std::int64_t u : KHopNeighborhood(g, v, hops)) {
          expect.insert(u);
        }
      }
      EXPECT_EQ(ball, std::vector<std::int64_t>(expect.begin(),
                                                expect.end()))
          << "shard " << shard << " hops " << hops;
    }
  }
}

TEST_F(ShardTest, LoadShardBallBitIdenticalToBuildShardBall) {
  Graph g = ShardGraph(300);
  ASSERT_TRUE(GraphStore::Write(dir_, g));
  GraphStore store;
  ASSERT_TRUE(store.Open(dir_));

  PartitionOptions opt;
  opt.num_shards = 4;
  opt.seed = 2;
  Partition p = PartitionGraph(store, opt);

  for (int shard = 0; shard < 4; ++shard) {
    ShardBall built = BuildShardBall(g, p, shard, 1);
    ShardBall loaded;
    ASSERT_TRUE(LoadShardBall(store, p, shard, 1, &loaded));
    EXPECT_EQ(loaded.nodes, built.nodes);
    EXPECT_EQ(loaded.core_local, built.core_local);
    EXPECT_EQ(loaded.num_core, built.num_core);
    EXPECT_EQ(loaded.num_core,
              static_cast<std::int64_t>(p.shard_nodes[shard].size()));
    EXPECT_EQ(loaded.graph.row_ptr, built.graph.row_ptr);
    EXPECT_EQ(loaded.graph.col, built.graph.col);
    EXPECT_TRUE(loaded.graph.features == built.graph.features);
    EXPECT_EQ(loaded.graph.labels, built.graph.labels);
    // Core-local indices point at the core's global ids.
    for (std::size_t i = 0; i < built.core_local.size(); ++i) {
      EXPECT_EQ(built.nodes[built.core_local[i]],
                p.shard_nodes[shard][i]);
    }
  }
}

// --- Merge determinism suite (satellite 4). ------------------------------

struct RunSnapshot {
  std::vector<Matrix> params;
  std::vector<std::int64_t> selected;
  std::vector<float> weights;
};

RunSnapshot RunSharded(const Graph& g, const ShardedConfig& cfg,
                       int threads) {
  SetNumThreads(threads);
  ShardedTrainer trainer(g, cfg);
  TrainResult r = trainer.Train();
  EXPECT_TRUE(r.ok());
  RunSnapshot snap;
  snap.params = trainer.encoder().params().CloneValues();
  snap.selected = trainer.selection().nodes;
  snap.weights = trainer.selection().weights;
  return snap;
}

TEST_F(ShardTest, TrainingIsThreadCountInvariantPerShardCount) {
  Graph g = ShardGraph();
  for (int shards : {1, 2, 4}) {
    ShardedConfig cfg = SmallShardedConfig(shards);
    RunSnapshot base = RunSharded(g, cfg, 1);
    ASSERT_FALSE(base.params.empty());
    ASSERT_FALSE(base.selected.empty());
    for (int threads : {2, 7}) {
      RunSnapshot other = RunSharded(g, cfg, threads);
      EXPECT_EQ(other.selected, base.selected)
          << shards << " shards, " << threads << " threads";
      EXPECT_EQ(other.weights, base.weights)
          << shards << " shards, " << threads << " threads";
      ASSERT_EQ(other.params.size(), base.params.size());
      for (std::size_t i = 0; i < base.params.size(); ++i) {
        EXPECT_TRUE(other.params[i] == base.params[i])
            << shards << " shards, " << threads << " threads, param " << i;
      }
    }
  }
}

TEST_F(ShardTest, MergedSelectionFollowsDocumentedPolicy) {
  Graph g = ShardGraph();
  ShardedConfig cfg = SmallShardedConfig(3);
  ShardedTrainer trainer(g, cfg);
  ASSERT_TRUE(trainer.Train().ok());

  const Partition& p = trainer.partition();
  const auto& per_shard = trainer.shard_selections();
  ASSERT_EQ(per_shard.size(), 3u);

  // Per-shard budgets are the largest-remainder apportionment of the
  // global budget over core sizes.
  std::vector<std::int64_t> core_sizes;
  for (const auto& core : p.shard_nodes) {
    core_sizes.push_back(static_cast<std::int64_t>(core.size()));
  }
  const std::int64_t k_total = static_cast<std::int64_t>(
      trainer.selection().nodes.size());
  std::vector<std::int64_t> budgets = ApportionBudget(k_total, core_sizes);
  for (int s = 0; s < 3; ++s) {
    EXPECT_EQ(static_cast<std::int64_t>(per_shard[s].nodes.size()),
              budgets[s]);
  }

  // The published merged selection IS the documented merge of the
  // per-shard results.
  SelectionResult remerged = MergeShardSelections(per_shard, p.shard_nodes);
  EXPECT_EQ(remerged.nodes, trainer.selection().nodes);
  EXPECT_EQ(remerged.weights, trainer.selection().weights);

  // Selected ids are valid, unique, and each lives in the shard that
  // selected it; weights sum to |V| (every node has one core).
  std::set<std::int64_t> seen;
  double weight_sum = 0.0;
  for (std::size_t i = 0; i < remerged.nodes.size(); ++i) {
    const std::int64_t v = remerged.nodes[i];
    ASSERT_GE(v, 0);
    ASSERT_LT(v, g.num_nodes);
    EXPECT_TRUE(seen.insert(v).second);
    weight_sum += remerged.weights[i];
  }
  EXPECT_NEAR(weight_sum, static_cast<double>(g.num_nodes), 1e-3);
}

TEST_F(ShardTest, OutOfCoreTrainingBitIdenticalToResident) {
  Graph g = ShardGraph();
  ASSERT_TRUE(GraphStore::Write(dir_, g));
  GraphStore store;
  ASSERT_TRUE(store.Open(dir_));

  ShardedConfig cfg = SmallShardedConfig(2);
  ShardedTrainer resident(g, cfg);
  ASSERT_TRUE(resident.Train().ok());
  ShardedTrainer streamed(store, cfg);
  ASSERT_TRUE(streamed.Train().ok());

  EXPECT_EQ(resident.partition().shard_of, streamed.partition().shard_of);
  EXPECT_EQ(resident.selection().nodes, streamed.selection().nodes);
  EXPECT_EQ(resident.selection().weights, streamed.selection().weights);
  std::vector<Matrix> a = resident.encoder().params().CloneValues();
  std::vector<Matrix> b = streamed.encoder().params().CloneValues();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a[i] == b[i]) << "param " << i;
  }
  EXPECT_EQ(resident.ConfigFingerprint(), streamed.ConfigFingerprint());
}

TEST_F(ShardTest, ShardedResumeBitIdenticalFromMidRunCheckpoint) {
  Graph g = ShardGraph();
  ShardedConfig cfg = SmallShardedConfig(2);
  cfg.base.epochs = 4;
  cfg.base.checkpoint_every = 2;

  // Reference: uninterrupted, no checkpointing.
  ShardedTrainer reference(g, cfg);
  ASSERT_TRUE(reference.Train().ok());
  std::vector<Matrix> want = reference.encoder().params().CloneValues();

  // Interrupted run: stop after 2 of 4 epochs, checkpoint on disk.
  ShardedConfig partial = cfg;
  partial.base.checkpoint_dir = dir_;
  partial.base.epochs = 2;
  {
    ShardedTrainer first(g, partial);
    ASSERT_TRUE(first.Train().ok());
  }

  // Fresh trainer resumes from the mid-run checkpoint and must land on
  // bit-identical parameters.
  ShardedConfig full = cfg;
  full.base.checkpoint_dir = dir_;
  ShardedTrainer resumed(g, full);
  TrainResult r = resumed.Train();
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.resumed);
  EXPECT_EQ(r.start_epoch, 2);

  std::vector<Matrix> got = resumed.encoder().params().CloneValues();
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_TRUE(got[i] == want[i]) << "param " << i;
  }
}

}  // namespace
}  // namespace e2gcl
