// Fault-injection harness for the pre-training loop: kill-and-resume
// bit-identity, corrupted/truncated checkpoint recovery, NaN-divergence
// rollback with lr backoff, gradient clipping, and checkpoint pruning.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "core/trainer.h"
#include "graph/generators.h"
#include "io/checkpoint.h"
#include "test_util.h"

namespace e2gcl {
namespace {

namespace fs = std::filesystem;

Graph FaultGraph(std::uint64_t seed = 1) {
  SbmSpec spec;
  spec.num_nodes = 120;
  spec.num_classes = 3;
  spec.feature_dim = 16;
  spec.avg_degree = 6;
  spec.informative_dims_per_class = 4;
  return GenerateSbm(spec, seed);
}

E2gclConfig FaultConfig() {
  E2gclConfig cfg;
  cfg.epochs = 8;
  cfg.hidden_dim = 12;
  cfg.embed_dim = 8;
  cfg.batch_size = 48;
  cfg.selector.num_clusters = 6;
  cfg.selector.sample_size = 24;
  cfg.selector.auto_sample_size = false;
  cfg.checkpoint_every = 2;
  return cfg;
}

class FaultToleranceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = (fs::temp_directory_path() /
            ("e2gcl_ft_" + std::string(info->name()) + "_" +
             std::to_string(::getpid())))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir_;
};

/// Reference run: same config, no checkpointing, no faults.
Matrix UninterruptedEmbedding(const Graph& g, E2gclConfig cfg) {
  cfg.checkpoint_dir.clear();
  cfg.fault_injector = {};
  E2gclTrainer trainer(g, cfg);
  TrainResult r = trainer.Train();
  EXPECT_TRUE(r.ok());
  EXPECT_FALSE(r.resumed);
  EXPECT_EQ(r.start_epoch, 0);
  return trainer.encoder().Encode(g);
}

TEST_F(FaultToleranceTest, CheckpointingDoesNotPerturbTraining) {
  Graph g = FaultGraph();
  E2gclConfig cfg = FaultConfig();
  Matrix reference = UninterruptedEmbedding(g, cfg);

  cfg.checkpoint_dir = dir_;
  E2gclTrainer trainer(g, cfg);
  TrainResult r = trainer.Train();
  ASSERT_TRUE(r.ok());
  // Observing state (checkpoint capture + atomic write) must not change
  // the trajectory: embeddings are bit-identical with and without it.
  EXPECT_TRUE(trainer.encoder().Encode(g) == reference);
}

TEST_F(FaultToleranceTest, WritesEpochStampedCheckpointsAndPrunes) {
  Graph g = FaultGraph();
  E2gclConfig cfg = FaultConfig();
  cfg.checkpoint_dir = dir_;
  cfg.checkpoint_keep = 2;
  E2gclTrainer trainer(g, cfg);
  TrainResult tr = trainer.Train();
  ASSERT_TRUE(tr.ok());
  // All four writes (epochs 1,3,5,7) are events even though pruning
  // keeps only the last two files.
  EXPECT_EQ(tr.CountEvents(TrainEvent::Kind::kCheckpointWrite), 4);
  EXPECT_EQ(tr.CountEvents(TrainEvent::Kind::kCheckpointWriteFailure), 0);

  // checkpoint_every=2 over 8 epochs → epochs 1,3,5,7; keep-last-2 → 5,7.
  std::vector<std::string> files = ListCheckpointFiles(dir_);
  ASSERT_EQ(files.size(), 2u);
  EXPECT_NE(files[0].find("ckpt-000005"), std::string::npos);
  EXPECT_NE(files[1].find("ckpt-000007"), std::string::npos);

  TrainerCheckpoint ckpt;
  ASSERT_TRUE(LoadTrainerCheckpoint(files[1], &ckpt));
  EXPECT_EQ(ckpt.epoch, 7);
  EXPECT_EQ(ckpt.config_fingerprint, trainer.ConfigFingerprint());
  EXPECT_FALSE(ckpt.encoder_params.empty());
  EXPECT_EQ(ckpt.adam_m.size(), ckpt.adam_v.size());
  EXPECT_GT(ckpt.adam_t, 0);
}

// The headline acceptance test: a run killed mid-training and resumed
// from its checkpoint produces bit-identical final embeddings to an
// uninterrupted run with the same seed and thread count.
TEST_F(FaultToleranceTest, KillAndResumeIsBitIdentical) {
  Graph g = FaultGraph();
  E2gclConfig cfg = FaultConfig();
  Matrix reference = UninterruptedEmbedding(g, cfg);

  // Phase 1: crash after epoch 4 (checkpoints exist for epochs 1 and 3).
  E2gclConfig crash_cfg = cfg;
  crash_cfg.checkpoint_dir = dir_;
  crash_cfg.fault_injector.kill_after_epoch = [](int epoch) {
    return epoch == 4;
  };
  {
    E2gclTrainer trainer(g, crash_cfg);
    TrainResult r = trainer.Train();
    EXPECT_EQ(r.status, TrainStatus::kKilled);
    EXPECT_FALSE(r.message.empty());
    // Structured events mirror the outcome: two checkpoint writes
    // (epochs 1 and 3) and exactly one kill, no retries.
    EXPECT_EQ(r.CountEvents(TrainEvent::Kind::kCheckpointWrite), 2);
    EXPECT_EQ(r.CountEvents(TrainEvent::Kind::kKilled), 1);
    EXPECT_EQ(r.CountEvents(TrainEvent::Kind::kRetry), 0);
  }
  ASSERT_FALSE(ListCheckpointFiles(dir_).empty());

  // Phase 2: a fresh trainer resumes from epoch 3's checkpoint and
  // replays epoch 4 onward from identical state.
  E2gclConfig resume_cfg = cfg;
  resume_cfg.checkpoint_dir = dir_;
  E2gclTrainer trainer(g, resume_cfg);
  TrainResult r = trainer.Train();
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.resumed);
  EXPECT_EQ(r.start_epoch, 4);
  EXPECT_EQ(r.CountEvents(TrainEvent::Kind::kResume), 1);
  EXPECT_TRUE(trainer.encoder().Encode(g) == reference);
}

// Second acceptance test: startup skips a corrupted newest checkpoint
// with a warning and recovers from the previous one — never a crash.
TEST_F(FaultToleranceTest, CorruptedNewestCheckpointIsSkipped) {
  Graph g = FaultGraph();
  E2gclConfig cfg = FaultConfig();
  Matrix reference = UninterruptedEmbedding(g, cfg);

  E2gclConfig crash_cfg = cfg;
  crash_cfg.checkpoint_dir = dir_;
  crash_cfg.fault_injector.kill_after_epoch = [](int epoch) {
    return epoch == 4;
  };
  {
    E2gclTrainer trainer(g, crash_cfg);
    trainer.Train();
  }
  std::vector<std::string> files = ListCheckpointFiles(dir_);
  ASSERT_EQ(files.size(), 2u);  // epochs 1 and 3

  // Flip a byte in the middle of the newest checkpoint's payload.
  {
    std::fstream f(files[1],
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(0, std::ios::end);
    const auto size = static_cast<long long>(f.tellg());
    f.seekp(size / 2);
    char byte = 0;
    f.seekg(size / 2);
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0xFF);
    f.seekp(size / 2);
    f.write(&byte, 1);
  }

  E2gclConfig resume_cfg = cfg;
  resume_cfg.checkpoint_dir = dir_;
  E2gclTrainer trainer(g, resume_cfg);
  TrainResult r = trainer.Train();
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.resumed);
  EXPECT_EQ(r.start_epoch, 2);  // fell back to the epoch-1 checkpoint
  EXPECT_TRUE(trainer.encoder().Encode(g) == reference);
}

TEST_F(FaultToleranceTest, TruncatedNewestCheckpointIsSkipped) {
  Graph g = FaultGraph();
  E2gclConfig cfg = FaultConfig();
  Matrix reference = UninterruptedEmbedding(g, cfg);

  E2gclConfig crash_cfg = cfg;
  crash_cfg.checkpoint_dir = dir_;
  crash_cfg.fault_injector.kill_after_epoch = [](int epoch) {
    return epoch == 4;
  };
  {
    E2gclTrainer trainer(g, crash_cfg);
    trainer.Train();
  }
  std::vector<std::string> files = ListCheckpointFiles(dir_);
  ASSERT_EQ(files.size(), 2u);

  // Simulate a torn write the atomic rename should normally prevent:
  // chop the newest file in half.
  {
    std::ifstream in(files[1], std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    in.close();
    std::ofstream out(files[1], std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }

  E2gclConfig resume_cfg = cfg;
  resume_cfg.checkpoint_dir = dir_;
  E2gclTrainer trainer(g, resume_cfg);
  TrainResult r = trainer.Train();
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.resumed);
  EXPECT_EQ(r.start_epoch, 2);
  EXPECT_TRUE(trainer.encoder().Encode(g) == reference);
}

TEST_F(FaultToleranceTest, AllCheckpointsInvalidFallsBackToFreshRun) {
  Graph g = FaultGraph();
  E2gclConfig cfg = FaultConfig();
  Matrix reference = UninterruptedEmbedding(g, cfg);

  fs::create_directories(dir_);
  std::ofstream(dir_ + "/ckpt-000003.e2gcl") << "not a checkpoint at all";

  cfg.checkpoint_dir = dir_;
  E2gclTrainer trainer(g, cfg);
  TrainResult r = trainer.Train();
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.resumed);
  EXPECT_EQ(r.start_epoch, 0);
  EXPECT_TRUE(trainer.encoder().Encode(g) == reference);
}

TEST_F(FaultToleranceTest, InjectedNanLossRollsBackAndRecovers) {
  Graph g = FaultGraph();
  E2gclConfig cfg = FaultConfig();
  cfg.checkpoint_dir = dir_;
  cfg.max_retries = 2;
  int injections = 0;
  cfg.fault_injector.corrupt_loss = [&injections](int epoch, float loss) {
    if (epoch == 5 && injections == 0) {
      ++injections;
      return std::numeric_limits<float>::quiet_NaN();
    }
    return loss;
  };
  E2gclTrainer trainer(g, cfg);
  TrainResult r = trainer.Train();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.retries_used, 1);
  EXPECT_EQ(injections, 1);
  EXPECT_EQ(trainer.stats().epochs_run, cfg.epochs);
  EXPECT_TRUE(AllFinite(trainer.encoder().Encode(g)));
  // The rollback is a structured event, not just a stderr line: exactly
  // one retry at the injected epoch, carrying the rollback detail.
  ASSERT_EQ(r.CountEvents(TrainEvent::Kind::kRetry), 1);
  EXPECT_EQ(r.CountEvents(TrainEvent::Kind::kDiverged), 0);
  for (const TrainEvent& e : r.events) {
    if (e.kind != TrainEvent::Kind::kRetry) continue;
    EXPECT_EQ(e.epoch, 5);
    EXPECT_NE(e.detail.find("rolled back"), std::string::npos);
  }
}

TEST_F(FaultToleranceTest, NanRecoveryWorksWithoutCheckpointDir) {
  Graph g = FaultGraph();
  E2gclConfig cfg = FaultConfig();
  cfg.max_retries = 1;
  int injections = 0;
  cfg.fault_injector.corrupt_loss = [&injections](int epoch, float loss) {
    if (epoch == 2 && injections == 0) {
      ++injections;
      return std::numeric_limits<float>::infinity();
    }
    return loss;
  };
  // No checkpoint_dir: rollback target is the in-memory initial state.
  E2gclTrainer trainer(g, cfg);
  TrainResult r = trainer.Train();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.retries_used, 1);
  EXPECT_TRUE(AllFinite(trainer.encoder().Encode(g)));
}

// Regression for the masked-NaN escape: MatMul's zero-skip fast path
// evaluates 0 * NaN as 0, so a NaN planted in a weight row whose input
// column is all zero produces a perfectly finite loss AND zero gradient
// for that row. A guard that only watches the loss/grad scalars lets the
// corrupted parameters sail through to the final model; the guard must
// check parameter finiteness directly (AllFinite over the param list).
TEST_F(FaultToleranceTest, MaskedNanParameterTriggersRollback) {
  Graph g = FaultGraph();
  const std::int64_t dead_col = g.feature_dim() - 1;
  // Zero the last feature column so the NaN below is arithmetically
  // invisible downstream (feature masking in the views multiplies by
  // 0/1, so the column stays zero in every view).
  for (std::int64_t v = 0; v < g.num_nodes; ++v) {
    g.features(v, dead_col) = 0.0f;
  }
  E2gclConfig cfg = FaultConfig();
  cfg.max_retries = 1;
  bool corrupted = false;
  cfg.fault_injector.corrupt_params = [&](int epoch,
                                          std::vector<Var>& params) {
    if (epoch == 2 && !corrupted) {
      corrupted = true;
      // params[0] is the first encoder weight W0 (feature_dim x hidden);
      // row `dead_col` only ever multiplies zeros.
      params[0].mutable_value()(dead_col, 0) =
          std::numeric_limits<float>::quiet_NaN();
    }
  };
  // No checkpoint_dir: rollback target is the in-memory initial state.
  E2gclTrainer trainer(g, cfg);
  TrainResult r = trainer.Train();
  // Pre-fix behaviour: the run "succeeds" with zero retries and a NaN
  // baked into the shipped weights. Post-fix: one rollback + retry, and
  // every parameter of the final model is finite.
  ASSERT_TRUE(r.ok()) << r.message;
  EXPECT_EQ(r.CountEvents(TrainEvent::Kind::kRetry), 1);
  for (const Var& p : trainer.encoder().params().params()) {
    EXPECT_TRUE(AllFinite(p.value()));
  }
  EXPECT_TRUE(AllFinite(trainer.encoder().Encode(g)));
}

TEST_F(FaultToleranceTest, ExhaustedRetriesFailStructuredNotSilent) {
  Graph g = FaultGraph();
  E2gclConfig cfg = FaultConfig();
  cfg.max_retries = 2;
  cfg.fault_injector.corrupt_loss = [](int, float) {
    return std::numeric_limits<float>::quiet_NaN();
  };
  E2gclTrainer trainer(g, cfg);
  TrainResult r = trainer.Train();
  EXPECT_EQ(r.status, TrainStatus::kDiverged);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.retries_used, 2);
  EXPECT_NE(r.message.find("non-finite"), std::string::npos);
  // Exact event trail: one retry per budget use, then one divergence.
  EXPECT_EQ(r.CountEvents(TrainEvent::Kind::kRetry), 2);
  EXPECT_EQ(r.CountEvents(TrainEvent::Kind::kDiverged), 1);
  // The encoder was rolled back to the last finite state — no garbage
  // embeddings escape a failed run.
  EXPECT_TRUE(AllFinite(trainer.encoder().Encode(g)));
}

TEST_F(FaultToleranceTest, RetriesReseedRngAndBackOffLearningRate) {
  Graph g = FaultGraph();
  E2gclConfig cfg = FaultConfig();
  cfg.checkpoint_dir = dir_;
  cfg.max_retries = 3;
  // Inject NaN at epoch 4 twice; the third visit passes. Each retry must
  // take a different (reseeded) trajectory rather than replaying the
  // failing one.
  int injections = 0;
  cfg.fault_injector.corrupt_loss = [&injections](int epoch, float loss) {
    if (epoch == 4 && injections < 2) {
      ++injections;
      return std::numeric_limits<float>::quiet_NaN();
    }
    return loss;
  };
  E2gclTrainer trainer(g, cfg);
  TrainResult r = trainer.Train();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.retries_used, 2);
  EXPECT_EQ(injections, 2);
  EXPECT_TRUE(AllFinite(trainer.encoder().Encode(g)));
  EXPECT_EQ(r.CountEvents(TrainEvent::Kind::kRetry), 2);
}

TEST_F(FaultToleranceTest, GradientClippingKeepsTrainingFinite) {
  Graph g = FaultGraph();
  E2gclConfig cfg = FaultConfig();
  cfg.grad_clip_norm = 0.05f;  // aggressively tight clip
  E2gclTrainer trainer(g, cfg);
  TrainResult r = trainer.Train();
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(AllFinite(trainer.encoder().Encode(g)));

  // Clipping is part of the deterministic trajectory: same config, same
  // result.
  E2gclTrainer again(g, cfg);
  ASSERT_TRUE(again.Train().ok());
  EXPECT_TRUE(again.encoder().Encode(g) == trainer.encoder().Encode(g));
}

TEST_F(FaultToleranceTest, MismatchedConfigRefusesResume) {
  Graph g = FaultGraph();
  E2gclConfig cfg = FaultConfig();
  cfg.checkpoint_dir = dir_;
  {
    E2gclTrainer trainer(g, cfg);
    ASSERT_TRUE(trainer.Train().ok());
  }
  ASSERT_FALSE(ListCheckpointFiles(dir_).empty());

  // A different seed is a different trajectory; its checkpoints must be
  // refused rather than silently blended in.
  E2gclConfig other = cfg;
  other.seed = 99;
  E2gclTrainer trainer(g, other);
  TrainResult r = trainer.Train();
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.resumed);
  EXPECT_EQ(r.start_epoch, 0);
}

TEST_F(FaultToleranceTest, ResumeWithExtendedEpochBudgetContinues) {
  Graph g = FaultGraph();
  E2gclConfig cfg = FaultConfig();
  cfg.checkpoint_dir = dir_;
  {
    E2gclTrainer trainer(g, cfg);
    ASSERT_TRUE(trainer.Train().ok());  // completes epochs 0..7
  }
  // Re-open with a larger epoch budget: training continues at epoch 8
  // instead of redoing the whole run (epoch count is excluded from the
  // config fingerprint for exactly this workflow).
  E2gclConfig longer = cfg;
  longer.epochs = 12;
  E2gclTrainer trainer(g, longer);
  TrainResult r = trainer.Train();
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.resumed);
  EXPECT_EQ(r.start_epoch, 8);
  EXPECT_EQ(trainer.stats().epochs_run, 12);
}

}  // namespace
}  // namespace e2gcl
