#include "eval/graph_level.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/tu_generator.h"
#include "test_util.h"

namespace e2gcl {
namespace {

TuDataset TinyDataset() {
  TuSpec spec;
  spec.num_graphs = 24;
  spec.num_classes = 2;
  spec.min_nodes = 8;
  spec.max_nodes = 16;
  spec.feature_dim = 8;
  return GenerateTuDataset(spec, 3);
}

TEST(DisjointUnion, NodeAndEdgeCountsAdd) {
  TuDataset ds = TinyDataset();
  UnionGraph u = DisjointUnion(ds);
  std::int64_t nodes = 0, edges = 0;
  for (const Graph& g : ds.graphs) {
    nodes += g.num_nodes;
    edges += g.num_edges();
  }
  EXPECT_EQ(u.graph.num_nodes, nodes);
  EXPECT_EQ(u.graph.num_edges(), edges);
  EXPECT_EQ(u.offsets.size(), ds.graphs.size() + 1);
  EXPECT_EQ(u.offsets.back(), nodes);
}

TEST(DisjointUnion, NoCrossGraphEdges) {
  TuDataset ds = TinyDataset();
  UnionGraph u = DisjointUnion(ds);
  for (std::size_t gi = 0; gi < ds.graphs.size(); ++gi) {
    for (std::int64_t v = u.offsets[gi]; v < u.offsets[gi + 1]; ++v) {
      for (std::int32_t w : u.graph.Neighbors(v)) {
        EXPECT_GE(w, u.offsets[gi]);
        EXPECT_LT(w, u.offsets[gi + 1]);
      }
    }
  }
}

TEST(DisjointUnion, FeaturesPreserved) {
  TuDataset ds = TinyDataset();
  UnionGraph u = DisjointUnion(ds);
  for (std::size_t gi = 0; gi < ds.graphs.size(); ++gi) {
    const Graph& g = ds.graphs[gi];
    for (std::int64_t v = 0; v < g.num_nodes; ++v) {
      for (std::int64_t c = 0; c < g.feature_dim(); ++c) {
        EXPECT_EQ(u.graph.features(u.offsets[gi] + v, c), g.features(v, c));
      }
    }
  }
}

TEST(SumReadout, MatchesManualSums) {
  Matrix emb = Matrix::FromRows({{1, 2}, {3, 4}, {5, 6}, {7, 8}});
  Matrix out = SumReadout(emb, {0, 1, 4});
  EXPECT_EQ(out.rows(), 2);
  EXPECT_FLOAT_EQ(out(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(out(0, 1), 2.0f);
  EXPECT_FLOAT_EQ(out(1, 0), 15.0f);
  EXPECT_FLOAT_EQ(out(1, 1), 18.0f);
}

TEST(SumReadout, EmptyGraphRangeGivesZeros) {
  Matrix emb = Matrix::FromRows({{1, 1}});
  Matrix out = SumReadout(emb, {0, 0, 1});
  EXPECT_FLOAT_EQ(out(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(out(1, 0), 1.0f);
}

TEST(RunLinkPrediction, ProducesSaneAuc) {
  SbmSpec spec;
  spec.num_nodes = 250;
  spec.num_classes = 3;
  spec.feature_dim = 30;
  spec.avg_degree = 10;
  Graph g = GenerateSbm(spec, 9);
  RunConfig cfg;
  cfg.epochs = 8;
  cfg.probe.epochs = 60;
  const double auc = RunLinkPrediction(ModelKind::kGrace, g, cfg);
  EXPECT_GT(auc, 50.0);  // better than coin flip on homophilous graph
  EXPECT_LE(auc, 100.0);
}

TEST(RunGraphClassification, RunsEndToEnd) {
  TuDataset ds = TinyDataset();
  RunConfig cfg;
  cfg.epochs = 5;
  cfg.probe.epochs = 40;
  cfg.e2gcl.selector.num_clusters = 8;
  cfg.e2gcl.batch_size = 64;
  const double acc = RunGraphClassification(ModelKind::kE2gcl, ds, cfg);
  EXPECT_GE(acc, 0.0);
  EXPECT_LE(acc, 100.0);
}

}  // namespace
}  // namespace e2gcl
