#include "tensor/csr.h"

#include <gtest/gtest.h>

#include "tensor/rng.h"

namespace e2gcl {
namespace {

CsrMatrix SampleCsr() {
  // [[0, 2, 0], [1, 0, 3], [0, 0, 0], [4, 0, 0]]
  return CsrMatrix::FromCoo(4, 3,
                            {{0, 1, 2.0f}, {1, 0, 1.0f}, {1, 2, 3.0f},
                             {3, 0, 4.0f}});
}

TEST(CsrMatrix, EmptyHasZeroNnz) {
  CsrMatrix m;
  EXPECT_EQ(m.rows(), 0);
  EXPECT_EQ(m.nnz(), 0);
}

TEST(CsrMatrix, FromCooBasic) {
  CsrMatrix m = SampleCsr();
  EXPECT_EQ(m.rows(), 4);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.nnz(), 4);
  EXPECT_EQ(m.RowNnz(0), 1);
  EXPECT_EQ(m.RowNnz(1), 2);
  EXPECT_EQ(m.RowNnz(2), 0);
  EXPECT_EQ(m.RowNnz(3), 1);
}

TEST(CsrMatrix, DuplicateTripletsAreSummed) {
  CsrMatrix m = CsrMatrix::FromCoo(2, 2, {{0, 0, 1.0f}, {0, 0, 2.5f}});
  EXPECT_EQ(m.nnz(), 1);
  EXPECT_FLOAT_EQ(m.ToDense()(0, 0), 3.5f);
}

TEST(CsrMatrix, UnsortedTripletsAccepted) {
  CsrMatrix m =
      CsrMatrix::FromCoo(3, 3, {{2, 1, 5.0f}, {0, 2, 1.0f}, {1, 0, 2.0f}});
  Matrix d = m.ToDense();
  EXPECT_FLOAT_EQ(d(2, 1), 5.0f);
  EXPECT_FLOAT_EQ(d(0, 2), 1.0f);
  EXPECT_FLOAT_EQ(d(1, 0), 2.0f);
}

TEST(CsrMatrix, ToDenseMatchesLayout) {
  Matrix d = SampleCsr().ToDense();
  EXPECT_FLOAT_EQ(d(0, 1), 2.0f);
  EXPECT_FLOAT_EQ(d(1, 0), 1.0f);
  EXPECT_FLOAT_EQ(d(1, 2), 3.0f);
  EXPECT_FLOAT_EQ(d(3, 0), 4.0f);
  EXPECT_FLOAT_EQ(d(2, 2), 0.0f);
}

TEST(CsrMatrix, TransposedMatchesDenseTranspose) {
  CsrMatrix m = SampleCsr();
  EXPECT_LT(MaxAbsDiff(m.Transposed().ToDense(), Transpose(m.ToDense())),
            1e-7f);
}

TEST(Spmm, MatchesDenseProduct) {
  CsrMatrix a = SampleCsr();
  Rng rng(1);
  Matrix b = Matrix::RandomNormal(3, 5, 0, 1, rng);
  Matrix sparse = Spmm(a, b);
  Matrix dense = MatMul(a.ToDense(), b);
  EXPECT_LT(MaxAbsDiff(sparse, dense), 1e-5f);
}

TEST(Spmm, TransposedAMatchesDense) {
  CsrMatrix a = SampleCsr();
  Rng rng(2);
  Matrix b = Matrix::RandomNormal(4, 6, 0, 1, rng);
  Matrix sparse = SpmmTransposedA(a, b);
  Matrix dense = MatMul(Transpose(a.ToDense()), b);
  EXPECT_LT(MaxAbsDiff(sparse, dense), 1e-5f);
}

TEST(Spmm, EmptyRowsGiveZeroOutput) {
  CsrMatrix a = CsrMatrix::FromCoo(3, 2, {});
  Matrix b = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix c = Spmm(a, b);
  EXPECT_EQ(c.rows(), 3);
  for (std::int64_t i = 0; i < c.size(); ++i) EXPECT_EQ(c.data()[i], 0.0f);
}

// Randomized property check across shapes and densities.
class SpmmRandom : public ::testing::TestWithParam<std::tuple<int, int, int>> {
};

TEST_P(SpmmRandom, AgreesWithDenseReference) {
  const auto [rows, cols, nnz] = GetParam();
  Rng rng(rows * 31 + cols * 7 + nnz);
  std::vector<std::tuple<std::int64_t, std::int64_t, float>> trip;
  for (int i = 0; i < nnz; ++i) {
    trip.emplace_back(rng.UniformInt(rows), rng.UniformInt(cols),
                      rng.Normal());
  }
  CsrMatrix a = CsrMatrix::FromCoo(rows, cols, trip);
  Matrix b = Matrix::RandomNormal(cols, 4, 0, 1, rng);
  EXPECT_LT(MaxAbsDiff(Spmm(a, b), MatMul(a.ToDense(), b)), 1e-4f);
  Matrix c = Matrix::RandomNormal(rows, 4, 0, 1, rng);
  EXPECT_LT(
      MaxAbsDiff(SpmmTransposedA(a, c), MatMul(Transpose(a.ToDense()), c)),
      1e-4f);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SpmmRandom,
    ::testing::Values(std::tuple{1, 1, 1}, std::tuple{5, 5, 10},
                      std::tuple{10, 3, 25}, std::tuple{3, 10, 25},
                      std::tuple{20, 20, 100}));


TEST(CsrMatrixDeathTest, FromCooRejectsColumnCountBeyondInt32) {
  // Column ids are stored as int32; before the explicit guard, a bare
  // static_cast silently wrapped ids >= 2^31 into negative indices.
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(CsrMatrix::FromCoo(1, (std::int64_t{1} << 31), {}),
               "int32");
}

}  // namespace
}  // namespace e2gcl
