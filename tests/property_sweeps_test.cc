// Parameterized property sweeps over the paper's key hyperparameters:
// invariants that must hold for *every* setting, not just the defaults.

#include <gtest/gtest.h>

#include "core/node_selector.h"
#include "core/raw_aggregation.h"
#include "core/view_generator.h"
#include "graph/generators.h"
#include "test_util.h"

namespace e2gcl {
namespace {


Graph SweepGraph() {
  SbmSpec spec;
  spec.num_nodes = 300;
  spec.num_classes = 3;
  spec.feature_dim = 36;
  spec.avg_degree = 8;
  spec.informative_dims_per_class = 8;
  return GenerateSbm(spec, 0xfeed);
}

// ---------------------------------------------------------------------------
// tau sweep: edge counts monotone-ish in tau, views always valid.
// ---------------------------------------------------------------------------

class TauSweep : public ::testing::TestWithParam<float> {};

TEST_P(TauSweep, ViewValidAndEdgeBudgetTracksTau) {
  const float tau = GetParam();
  Graph g = SweepGraph();
  ViewGenerator gen(g);
  Rng rng(17);
  ViewConfig cfg{.tau = tau, .eta = 0.3f};
  Graph view = gen.GenerateGlobalView(cfg, rng);
  EXPECT_EQ(view.num_nodes, g.num_nodes);
  EXPECT_TRUE(AllFinite(view.features));
  if (tau == 0.0f) {
    EXPECT_EQ(view.num_edges(), 0);
  } else {
    // Directed samples are tau * deg per node before symmetrization;
    // the undirected union is bounded by 2x that and by the candidate
    // supply.
    const double directed = tau * static_cast<double>(g.col.size());
    EXPECT_LE(static_cast<double>(view.num_edges()), directed * 1.1 + 10);
    EXPECT_GT(view.num_edges(), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(PaperGrid, TauSweep,
                         ::testing::Values(0.0f, 0.2f, 0.4f, 0.6f, 0.8f,
                                           1.0f, 1.2f, 1.4f));

// ---------------------------------------------------------------------------
// eta sweep: perturbation magnitude bounded and monotone in expectation.
// ---------------------------------------------------------------------------

class EtaSweep : public ::testing::TestWithParam<float> {};

TEST_P(EtaSweep, PerturbationBoundedByEq16) {
  const float eta = GetParam();
  Graph g = SweepGraph();
  ViewGenerator gen(g);
  Rng rng(23);
  ViewConfig cfg{.tau = 0.8f, .eta = eta};
  Graph view = gen.GenerateGlobalView(cfg, rng);
  std::int64_t changed = 0;
  for (std::int64_t i = 0; i < g.features.size(); ++i) {
    const float orig = g.features.data()[i];
    const float pert = view.features.data()[i];
    // Eq. 16: x' = x + u * x, u in [-1, 1] => x' in [0, 2x] for x >= 0.
    EXPECT_GE(pert, -1e-6f);
    EXPECT_LE(pert, 2.0f * orig + 1e-6f);
    if (pert != orig) ++changed;
  }
  if (eta == 0.0f) {
    EXPECT_EQ(changed, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(PaperGrid, EtaSweep,
                         ::testing::Values(0.0f, 0.2f, 0.4f, 0.6f, 0.8f,
                                           1.0f, 1.2f, 1.4f));

TEST(EtaSweep, PerturbedEntryCountGrowsWithEta) {
  Graph g = SweepGraph();
  ViewGenerator gen(g);
  auto changed_at = [&](float eta) {
    Rng rng(29);
    Graph view = gen.GenerateGlobalView({.tau = 1.0f, .eta = eta}, rng);
    std::int64_t changed = 0;
    for (std::int64_t i = 0; i < g.features.size(); ++i) {
      if (view.features.data()[i] != g.features.data()[i]) ++changed;
    }
    return changed;
  };
  EXPECT_LT(changed_at(0.2f), changed_at(0.6f));
  EXPECT_LT(changed_at(0.6f), changed_at(1.2f));
}

// ---------------------------------------------------------------------------
// Budget sweep: selector invariants for every budget.
// ---------------------------------------------------------------------------

class BudgetSweep : public ::testing::TestWithParam<int> {};

TEST_P(BudgetSweep, SelectionInvariants) {
  const std::int64_t budget = GetParam();
  Graph g = SweepGraph();
  Matrix r = RawAggregation(g, 2);
  SelectorConfig cfg;
  cfg.budget = budget;
  cfg.num_clusters = 12;
  cfg.sample_size = 32;
  cfg.auto_sample_size = false;
  Rng rng(31 + budget);
  SelectionResult res = SelectCoreset(r, cfg, rng);
  EXPECT_EQ(static_cast<std::int64_t>(res.nodes.size()), budget);
  double wsum = 0.0;
  for (float w : res.weights) {
    EXPECT_GE(w, 0.0f);
    wsum += w;
  }
  EXPECT_NEAR(wsum, static_cast<double>(g.num_nodes), 1e-3);
  EXPECT_GE(res.representativity, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Budgets, BudgetSweep,
                         ::testing::Values(1, 2, 5, 20, 75, 150, 300));

// ---------------------------------------------------------------------------
// Layer sweep: raw aggregation stays finite and shrinks pairwise spread
// (smoothing) as L grows.
// ---------------------------------------------------------------------------

class LayerSweep : public ::testing::TestWithParam<int> {};

TEST_P(LayerSweep, RawAggregationFinite) {
  Graph g = SweepGraph();
  Matrix r = RawAggregation(g, GetParam());
  EXPECT_TRUE(AllFinite(r));
  EXPECT_EQ(r.rows(), g.num_nodes);
  EXPECT_EQ(r.cols(), g.feature_dim());
}

INSTANTIATE_TEST_SUITE_P(Layers, LayerSweep, ::testing::Values(0, 1, 2, 3, 5));

TEST(LayerSweep, DeeperAggregationSmooths) {
  Graph g = SweepGraph();
  auto spread = [&](int layers) {
    Matrix r = RawAggregation(g, layers);
    double acc = 0.0;
    Rng rng(37);
    for (int t = 0; t < 300; ++t) {
      const std::int64_t u = rng.UniformInt(g.num_nodes);
      const std::int64_t v = rng.UniformInt(g.num_nodes);
      acc += RowDistance(r, u, r, v);
    }
    return acc;
  };
  EXPECT_LT(spread(3), spread(1));
  EXPECT_LT(spread(1), spread(0));
}

// ---------------------------------------------------------------------------
// beta sweep: edge-score existing-edge preference.
// ---------------------------------------------------------------------------

class BetaSweep : public ::testing::TestWithParam<float> {};

TEST_P(BetaSweep, ScoresPositiveAndFinite) {
  const float beta = GetParam();
  Graph g = SweepGraph();
  ImportanceScores s(g, beta);
  Rng rng(41);
  for (int t = 0; t < 200; ++t) {
    const std::int64_t v = rng.UniformInt(g.num_nodes);
    const std::int64_t u = rng.UniformInt(g.num_nodes);
    for (bool is_neighbor : {true, false}) {
      const float w = s.EdgeScore(v, u, is_neighbor);
      EXPECT_GT(w, 0.0f);
      EXPECT_TRUE(std::isfinite(w));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Betas, BetaSweep,
                         ::testing::Values(0.1f, 0.3f, 0.5f, 0.7f, 0.9f));

}  // namespace
}  // namespace e2gcl
