// Network-protocol torture matrix: every malformed input — truncated
// frames, bad magic, unsupported version, oversized declared lengths,
// CRC mismatches, slow-loris byte-at-a-time writes, pipelined frames,
// mid-request disconnects, garbage HTTP — must produce a typed error
// frame or a clean close, never a crash, hang, or CHECK-abort. The
// server under test is a real NetServer on a loopback ephemeral port;
// raw sockets forge the hostile byte streams the NetClient cannot.
// Registered as a TSAN/ASAN target in check_sanitizers.sh.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "graph/generators.h"
#include "io/checkpoint.h"
#include "io/serialize.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "nn/gcn.h"
#include "serve/embedding_server.h"

namespace e2gcl {
namespace net {
namespace {

Graph ServeGraph(std::uint64_t seed = 7) {
  SbmSpec spec;
  spec.num_nodes = 120;
  spec.num_classes = 3;
  spec.feature_dim = 16;
  spec.avg_degree = 6;
  spec.informative_dims_per_class = 4;
  return GenerateSbm(spec, seed);
}

TrainerCheckpoint MakeCheckpoint(const Graph& g, std::uint64_t seed = 3) {
  GcnConfig cfg;
  cfg.dims = {g.feature_dim(), 12, 8};
  Rng rng(seed);
  GcnEncoder encoder(cfg, rng);
  TrainerCheckpoint ckpt;
  ckpt.epoch = 0;
  ckpt.config_fingerprint = 0xfeedULL;
  ckpt.encoder_params = encoder.params().CloneValues();
  return ckpt;
}

/// One serving stack per fixture: EmbeddingServer + NetServer on an
/// ephemeral loopback port.
class NetProtocolTest : public ::testing::Test {
 protected:
  void StartServer(NetServerOptions net_options = {}) {
    graph_ = std::make_unique<Graph>(ServeGraph());
    std::string error;
    server_ = EmbeddingServer::FromCheckpoint(*graph_, MakeCheckpoint(*graph_),
                                              ServeOptions(), &error);
    ASSERT_NE(server_, nullptr) << error;
    net_ = NetServer::Start(server_.get(), net_options, &error);
    ASSERT_NE(net_, nullptr) << error;
  }

  void TearDown() override {
    net_.reset();
    server_.reset();
  }

  int port() const { return net_->port(); }

  std::unique_ptr<Graph> graph_;
  std::unique_ptr<EmbeddingServer> server_;
  std::unique_ptr<NetServer> net_;
};

/// Raw loopback socket for forging hostile byte streams. 5s receive
/// timeout: a server that stops answering fails the test instead of
/// hanging it.
class RawSock {
 public:
  explicit RawSock(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ = ::connect(fd_, reinterpret_cast<struct sockaddr*>(&addr),
                           sizeof(addr)) == 0;
    struct timeval tv;
    tv.tv_sec = 5;
    tv.tv_usec = 0;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }

  ~RawSock() { Close(); }

  bool connected() const { return connected_; }

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  bool SendAll(const std::string& bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t w = ::send(fd_, bytes.data() + off, bytes.size() - off,
                               MSG_NOSIGNAL);
      if (w <= 0) return false;
      off += static_cast<std::size_t>(w);
    }
    return true;
  }

  bool RecvExact(std::size_t n, std::string* out) {
    char buf[4096];
    while (n > 0) {
      const ssize_t r = ::recv(fd_, buf, std::min(n, sizeof(buf)), 0);
      if (r <= 0) return false;
      out->append(buf, static_cast<std::size_t>(r));
      n -= static_cast<std::size_t>(r);
    }
    return true;
  }

  /// Reads one whole frame; EXPECTs valid framing on the way.
  bool RecvFrame(FrameHeader* header, std::string* payload) {
    std::string bytes;
    if (!RecvExact(kFrameHeaderSize, &bytes)) return false;
    WireError error = WireError::kBadRequest;
    if (TryDecodeHeader(bytes, header, &error) != HeaderStatus::kOk) {
      ADD_FAILURE() << "server sent an invalid header: "
                    << WireErrorName(error);
      return false;
    }
    payload->clear();
    if (!RecvExact(header->payload_len, payload)) return false;
    EXPECT_TRUE(VerifyPayload(*header, *payload));
    return true;
  }

  /// Drains until the server closes (HTTP responses end with a close).
  std::string RecvUntilClose() {
    std::string out;
    char buf[4096];
    for (;;) {
      const ssize_t r = ::recv(fd_, buf, sizeof(buf), 0);
      if (r <= 0) break;
      out.append(buf, static_cast<std::size_t>(r));
    }
    return out;
  }

  /// True when the server closed the connection (recv returns 0 before
  /// the receive timeout).
  bool AwaitClose() {
    char buf[256];
    for (;;) {
      const ssize_t r = ::recv(fd_, buf, sizeof(buf), 0);
      if (r == 0) return true;
      if (r < 0) return false;  // timeout or error: not a clean close
    }
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

/// A frame with full control over every header field.
std::string ForgeFrame(std::uint32_t magic, std::uint8_t version,
                       std::uint8_t type, std::uint16_t flags,
                       std::uint64_t request_id, std::uint32_t declared_len,
                       const std::string& payload, bool good_crc = true) {
  ByteWriter w;
  w.WriteU32(magic);
  w.WriteU32(static_cast<std::uint32_t>(version) |
             (static_cast<std::uint32_t>(type) << 8) |
             (static_cast<std::uint32_t>(flags) << 16));
  w.WriteU64(request_id);
  w.WriteU32(declared_len);
  w.WriteU32(good_crc ? Crc32(payload.data(), payload.size()) : 0xdeadbeef);
  return w.bytes() + payload;
}

std::string GoodEmbedFrame(std::uint64_t request_id, std::int64_t node) {
  GetEmbeddingRequest req;
  req.node = node;
  return EncodeGetEmbedding(request_id, req);
}

/// Asserts the next frame is kError with the given code.
void ExpectErrorFrame(RawSock* sock, WireError want) {
  FrameHeader header;
  std::string payload;
  ASSERT_TRUE(sock->RecvFrame(&header, &payload));
  ASSERT_EQ(header.type, FrameType::kError);
  ErrorFrame error;
  ASSERT_TRUE(DecodeError(payload, &error));
  EXPECT_EQ(error.code, want) << error.message;
}

/// Asserts the server still answers correctly — the canary after every
/// torture case: whatever the hostile connection did, an honest client
/// must be unaffected.
void ExpectServerHealthy(int port, EmbeddingServer* server) {
  std::string error;
  auto client = NetClient::Connect("127.0.0.1", port, {}, &error);
  ASSERT_NE(client, nullptr) << error;
  const EmbeddingResponse got = client->GetEmbedding(5);
  ASSERT_EQ(got.status, ServeStatus::kOk) << client->last_error();
  const EmbeddingResponse want = server->GetEmbedding(5, {});
  EXPECT_EQ(got.row, want.row);
}

// --- Codec round trips (no sockets). ---------------------------------------

TEST(NetCodec, RequestRoundTrips) {
  GetEmbeddingRequest embed;
  embed.node = 42;
  embed.options.deadline_us = 1500;
  embed.options.allow_degraded = false;
  const std::string frame = EncodeGetEmbedding(9, embed);
  FrameHeader header;
  WireError error = WireError::kBadRequest;
  ASSERT_EQ(TryDecodeHeader(frame, &header, &error), HeaderStatus::kOk);
  EXPECT_EQ(header.type, FrameType::kGetEmbedding);
  EXPECT_EQ(header.request_id, 9u);
  const std::string payload = frame.substr(kFrameHeaderSize);
  ASSERT_TRUE(VerifyPayload(header, payload));
  Request decoded;
  ASSERT_TRUE(DecodeRequest(header, payload, &decoded));
  EXPECT_EQ(decoded.embed.node, 42);
  EXPECT_EQ(decoded.embed.options.deadline_us, 1500);
  EXPECT_FALSE(decoded.embed.options.allow_degraded);
}

TEST(NetCodec, ResponseRoundTrips) {
  TopKResponse topk;
  topk.status = ServeStatus::kDegraded;
  topk.generation = 3;
  topk.result.nodes = {4, 7, 1};
  topk.result.scores = {0.5f, 0.25f, -1.0f};
  const std::string frame = EncodeTopKResponse(11, topk);
  FrameHeader header;
  WireError error = WireError::kBadRequest;
  ASSERT_EQ(TryDecodeHeader(frame, &header, &error), HeaderStatus::kOk);
  TopKResponse decoded;
  ASSERT_TRUE(DecodeTopKResponse(frame.substr(kFrameHeaderSize), &decoded));
  EXPECT_EQ(decoded.status, ServeStatus::kDegraded);
  EXPECT_EQ(decoded.generation, 3u);
  EXPECT_EQ(decoded.result.nodes, topk.result.nodes);
  EXPECT_EQ(decoded.result.scores, topk.result.scores);
}

TEST(NetCodec, HeaderNeedsAllTwentyFourBytes) {
  const std::string frame = GoodEmbedFrame(1, 0);
  FrameHeader header;
  WireError error = WireError::kBadRequest;
  for (std::size_t n = 0; n < kFrameHeaderSize; ++n) {
    EXPECT_EQ(TryDecodeHeader(frame.substr(0, n), &header, &error),
              HeaderStatus::kNeedMore)
        << n;
  }
  EXPECT_EQ(TryDecodeHeader(frame, &header, &error), HeaderStatus::kOk);
}

TEST(NetCodec, RejectsUndefinedStatusByte) {
  // A response whose status byte is 250 (or the client-side transport
  // sentinel 7) must not decode: the wire can only carry real server
  // statuses.
  for (const std::uint32_t bad : {7u, 250u}) {
    ByteWriter w;
    w.WriteU32(bad);
    w.WriteU64(1);
    w.WriteF32(0.5f);
    ScoreResponse r;
    EXPECT_FALSE(DecodeScoreResponse(w.bytes(), &r)) << bad;
  }
}

TEST(NetCodec, RejectsTrailingBytes) {
  const std::string frame = GoodEmbedFrame(1, 3);
  FrameHeader header;
  WireError error = WireError::kBadRequest;
  ASSERT_EQ(TryDecodeHeader(frame, &header, &error), HeaderStatus::kOk);
  std::string payload = frame.substr(kFrameHeaderSize);
  payload.push_back('\0');
  header.payload_len += 1;
  Request decoded;
  EXPECT_FALSE(DecodeRequest(header, payload, &decoded));
}

// --- Framing errors: one typed error frame, then close. --------------------

TEST_F(NetProtocolTest, BadMagicGetsTypedErrorThenClose) {
  StartServer();
  RawSock sock(port());
  ASSERT_TRUE(sock.connected());
  ASSERT_TRUE(sock.SendAll(
      ForgeFrame(0x12345678, kProtocolVersion, 1, 0, 7, 0, "")));
  ExpectErrorFrame(&sock, WireError::kBadMagic);
  EXPECT_TRUE(sock.AwaitClose());
  ExpectServerHealthy(port(), server_.get());
}

TEST_F(NetProtocolTest, UnsupportedVersionGetsTypedErrorThenClose) {
  StartServer();
  RawSock sock(port());
  ASSERT_TRUE(sock.connected());
  ASSERT_TRUE(sock.SendAll(
      ForgeFrame(kProtocolMagic, kProtocolVersion + 1, 1, 0, 7, 0, "")));
  ExpectErrorFrame(&sock, WireError::kBadVersion);
  EXPECT_TRUE(sock.AwaitClose());
  ExpectServerHealthy(port(), server_.get());
}

TEST_F(NetProtocolTest, NonzeroFlagsGetTypedErrorThenClose) {
  StartServer();
  RawSock sock(port());
  ASSERT_TRUE(sock.connected());
  ASSERT_TRUE(sock.SendAll(
      ForgeFrame(kProtocolMagic, kProtocolVersion, 1, 0xBEEF, 7, 0, "")));
  ExpectErrorFrame(&sock, WireError::kBadFlags);
  EXPECT_TRUE(sock.AwaitClose());
  ExpectServerHealthy(port(), server_.get());
}

TEST_F(NetProtocolTest, OversizedDeclaredLengthGetsTypedErrorThenClose) {
  StartServer();
  RawSock sock(port());
  ASSERT_TRUE(sock.connected());
  // Declares 256 MiB; the server must reject from the header alone,
  // never waiting for (or buffering toward) a payload that large.
  ASSERT_TRUE(sock.SendAll(ForgeFrame(kProtocolMagic, kProtocolVersion, 1, 0,
                                      7, 256u << 20, "")));
  ExpectErrorFrame(&sock, WireError::kFrameTooLarge);
  EXPECT_TRUE(sock.AwaitClose());
  ExpectServerHealthy(port(), server_.get());
}

TEST_F(NetProtocolTest, CrcMismatchGetsTypedErrorThenClose) {
  StartServer();
  RawSock sock(port());
  ASSERT_TRUE(sock.connected());
  ByteWriter payload;
  payload.WriteI64(5);
  payload.WriteI64(0);
  payload.WriteU32(1);
  ASSERT_TRUE(sock.SendAll(
      ForgeFrame(kProtocolMagic, kProtocolVersion, 1, 0, 7,
                 static_cast<std::uint32_t>(payload.bytes().size()),
                 payload.bytes(), /*good_crc=*/false)));
  ExpectErrorFrame(&sock, WireError::kBadCrc);
  EXPECT_TRUE(sock.AwaitClose());
  ExpectServerHealthy(port(), server_.get());
}

// --- Payload errors: in-band kBadRequest, connection survives. -------------

TEST_F(NetProtocolTest, UnknownTypeAnsweredInBandAndConnectionSurvives) {
  StartServer();
  RawSock sock(port());
  ASSERT_TRUE(sock.connected());
  ASSERT_TRUE(sock.SendAll(
      ForgeFrame(kProtocolMagic, kProtocolVersion, 0x55, 0, 7, 0, "")));
  ExpectErrorFrame(&sock, WireError::kBadRequest);
  // The stream is still frame-aligned: a good request on the same
  // connection must be served.
  ASSERT_TRUE(sock.SendAll(GoodEmbedFrame(8, 3)));
  FrameHeader header;
  std::string payload;
  ASSERT_TRUE(sock.RecvFrame(&header, &payload));
  EXPECT_EQ(header.type, FrameType::kEmbeddingResponse);
  EXPECT_EQ(header.request_id, 8u);
}

TEST_F(NetProtocolTest, TruncatedFieldsAnsweredInBand) {
  StartServer();
  RawSock sock(port());
  ASSERT_TRUE(sock.connected());
  const std::string short_payload = "abc";
  ASSERT_TRUE(sock.SendAll(
      ForgeFrame(kProtocolMagic, kProtocolVersion, 1, 0, 7,
                 static_cast<std::uint32_t>(short_payload.size()),
                 short_payload)));
  ExpectErrorFrame(&sock, WireError::kBadRequest);
}

TEST_F(NetProtocolTest, InvalidOptionBytesAnsweredInBand) {
  StartServer();
  RawSock sock(port());
  ASSERT_TRUE(sock.connected());
  ByteWriter payload;  // valid node, negative deadline
  payload.WriteI64(5);
  payload.WriteI64(-1);
  payload.WriteU32(0);
  ASSERT_TRUE(sock.SendAll(
      ForgeFrame(kProtocolMagic, kProtocolVersion, 1, 0, 7,
                 static_cast<std::uint32_t>(payload.bytes().size()),
                 payload.bytes())));
  ExpectErrorFrame(&sock, WireError::kBadRequest);
}

// --- Serving-level validation: typed responses, not error frames. ----------

TEST_F(NetProtocolTest, OutOfRangeNodeGetsInvalidArgumentResponse) {
  StartServer();
  std::string error;
  auto client = NetClient::Connect("127.0.0.1", port(), {}, &error);
  ASSERT_NE(client, nullptr) << error;
  // Hostile ids must never reach the CHECK-validated typed API.
  EXPECT_EQ(client->GetEmbedding(std::int64_t{1} << 30).status,
            ServeStatus::kInvalidArgument);
  EXPECT_EQ(client->GetEmbedding(-1).status, ServeStatus::kInvalidArgument);
  EXPECT_EQ(client->ScoreLink(0, graph_->num_nodes).status,
            ServeStatus::kInvalidArgument);
  EXPECT_EQ(client->TopKSimilar(0, -1).status, ServeStatus::kInvalidArgument);
  EXPECT_EQ(client->TopKSimilar(0, std::int64_t{1} << 30).status,
            ServeStatus::kInvalidArgument);
  // The connection survived every rejection.
  EXPECT_EQ(client->GetEmbedding(5).status, ServeStatus::kOk);
}

// --- Stream torture. -------------------------------------------------------

TEST_F(NetProtocolTest, MidRequestDisconnectLeavesServerHealthy) {
  StartServer();
  {
    RawSock sock(port());
    ASSERT_TRUE(sock.connected());
    // Header promising payload bytes, a few of them sent, then gone.
    const std::string frame = GoodEmbedFrame(7, 5);
    ASSERT_TRUE(sock.SendAll(frame.substr(0, kFrameHeaderSize + 5)));
    sock.Close();
  }
  {
    RawSock sock(port());  // disconnect with only half a header out
    ASSERT_TRUE(sock.connected());
    ASSERT_TRUE(sock.SendAll(GoodEmbedFrame(7, 5).substr(0, 10)));
    sock.Close();
  }
  ExpectServerHealthy(port(), server_.get());
}

TEST_F(NetProtocolTest, SlowLorisDoesNotBlockFastClients) {
  StartServer();
  RawSock slow(port());
  ASSERT_TRUE(slow.connected());
  const std::string frame = GoodEmbedFrame(3, 9);
  std::size_t sent = 0;
  // Drip half the frame one byte at a time; a fast client must make
  // progress in between (the event loop never blocks on one socket).
  for (; sent < frame.size() / 2; ++sent) {
    ASSERT_TRUE(slow.SendAll(frame.substr(sent, 1)));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ExpectServerHealthy(port(), server_.get());
  for (; sent < frame.size(); ++sent) {
    ASSERT_TRUE(slow.SendAll(frame.substr(sent, 1)));
  }
  FrameHeader header;
  std::string payload;
  ASSERT_TRUE(slow.RecvFrame(&header, &payload));
  EXPECT_EQ(header.type, FrameType::kEmbeddingResponse);
  EXPECT_EQ(header.request_id, 3u);
}

TEST_F(NetProtocolTest, PipelinedRequestsEachGetTheirAnswer) {
  StartServer();
  RawSock sock(port());
  ASSERT_TRUE(sock.connected());
  // Two requests in one write. Workers may finish them in either
  // order; request ids pair answers with questions.
  ASSERT_TRUE(sock.SendAll(GoodEmbedFrame(21, 4) + GoodEmbedFrame(22, 8)));
  bool saw21 = false;
  bool saw22 = false;
  for (int i = 0; i < 2; ++i) {
    FrameHeader header;
    std::string payload;
    ASSERT_TRUE(sock.RecvFrame(&header, &payload));
    ASSERT_EQ(header.type, FrameType::kEmbeddingResponse);
    EmbeddingResponse r;
    ASSERT_TRUE(DecodeEmbeddingResponse(payload, &r));
    EXPECT_EQ(r.status, ServeStatus::kOk);
    const std::int64_t node = header.request_id == 21 ? 4 : 8;
    EXPECT_EQ(r.row, server_->GetEmbedding(node, {}).row);
    saw21 |= header.request_id == 21;
    saw22 |= header.request_id == 22;
  }
  EXPECT_TRUE(saw21);
  EXPECT_TRUE(saw22);
}

TEST_F(NetProtocolTest, IdleConnectionIsReaped) {
  NetServerOptions options;
  options.idle_timeout_ms = 50;
  StartServer(options);
  RawSock sock(port());
  ASSERT_TRUE(sock.connected());
  EXPECT_TRUE(sock.AwaitClose());  // never sent a byte
}

TEST_F(NetProtocolTest, ConnectAndVanishImmediately) {
  StartServer();
  for (int i = 0; i < 8; ++i) {
    RawSock sock(port());
    ASSERT_TRUE(sock.connected());
  }
  ExpectServerHealthy(port(), server_.get());
}

TEST_F(NetProtocolTest, GarbageBytesGetBadMagicThenClose) {
  StartServer();
  RawSock sock(port());
  ASSERT_TRUE(sock.connected());
  // Not a known HTTP method, not the magic: binary path, bad magic.
  ASSERT_TRUE(sock.SendAll(std::string(64, 'Z')));
  ExpectErrorFrame(&sock, WireError::kBadMagic);
  EXPECT_TRUE(sock.AwaitClose());
  ExpectServerHealthy(port(), server_.get());
}

// --- HTTP sharing the port. ------------------------------------------------

TEST_F(NetProtocolTest, HttpHealthzMetricsAndErrors) {
  StartServer();
  struct Case {
    const char* request;
    const char* want_status;
    const char* want_body_substr;
  };
  const std::vector<Case> cases = {
      {"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n", "200 OK", "ok"},
      {"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n", "200 OK",
       "\"net.accepted\""},
      {"GET /nope HTTP/1.1\r\nHost: x\r\n\r\n", "404 Not Found", "not found"},
      {"POST /healthz HTTP/1.1\r\nHost: x\r\n\r\n", "405 Method Not Allowed",
       "only GET"},
  };
  for (const Case& c : cases) {
    RawSock sock(port());
    ASSERT_TRUE(sock.connected());
    ASSERT_TRUE(sock.SendAll(c.request));
    const std::string response = sock.RecvUntilClose();
    EXPECT_NE(response.find(c.want_status), std::string::npos) << response;
    EXPECT_NE(response.find(c.want_body_substr), std::string::npos)
        << response;
  }
}

TEST_F(NetProtocolTest, HttpMetricsPromFormatRoundTrips) {
  StartServer();
  // JSON view first: net.accepted only grows afterwards, so the prom
  // value read on a later connection must be >= this one.
  std::uint64_t json_accepted = 0;
  {
    RawSock sock(port());
    ASSERT_TRUE(sock.connected());
    ASSERT_TRUE(sock.SendAll("GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n"));
    const std::string response = sock.RecvUntilClose();
    const std::string key = "\"net.accepted\":";
    const std::size_t at = response.find(key);
    ASSERT_NE(at, std::string::npos) << response;
    json_accepted =
        std::strtoull(response.c_str() + at + key.size(), nullptr, 10);
    EXPECT_GE(json_accepted, 1u);
  }
  RawSock sock(port());
  ASSERT_TRUE(sock.connected());
  ASSERT_TRUE(
      sock.SendAll("GET /metrics?format=prom HTTP/1.1\r\nHost: x\r\n\r\n"));
  const std::string response = sock.RecvUntilClose();
  EXPECT_NE(response.find("200 OK"), std::string::npos) << response;
  EXPECT_NE(response.find("text/plain; version=0.0.4"), std::string::npos)
      << response;
  // Exposition-format shape: dotted names become e2gcl_-prefixed
  // underscore names, each with a # TYPE line.
  EXPECT_NE(response.find("# TYPE e2gcl_net_accepted counter"),
            std::string::npos)
      << response;
  EXPECT_EQ(response.find("net.accepted"), std::string::npos) << response;
  const std::string sample = "\ne2gcl_net_accepted ";
  const std::size_t at = response.find(sample);
  ASSERT_NE(at, std::string::npos) << response;
  const std::uint64_t prom_accepted =
      std::strtoull(response.c_str() + at + sample.size(), nullptr, 10);
  EXPECT_GE(prom_accepted, json_accepted) << response;
  // Every sample line in the body parses as `name value`.
  const std::size_t body_at = response.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  std::istringstream body(response.substr(body_at + 4));
  std::string line;
  int samples = 0;
  while (std::getline(body, line)) {
    if (line.empty() || line[0] == '#') continue;
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_EQ(line.rfind("e2gcl_", 0), 0u) << line;
    char* end = nullptr;
    std::strtoull(line.c_str() + space + 1, &end, 10);
    EXPECT_EQ(*end, '\0') << line;
    ++samples;
  }
  EXPECT_GE(samples, 2);
}

TEST_F(NetProtocolTest, OversizedHttpHeadersGet400) {
  NetServerOptions options;
  options.max_http_header_bytes = 256;
  StartServer(options);
  RawSock sock(port());
  ASSERT_TRUE(sock.connected());
  std::string request = "GET /healthz HTTP/1.1\r\n";
  request += "X-Filler: " + std::string(1024, 'a') + "\r\n";
  ASSERT_TRUE(sock.SendAll(request));  // never finishes the headers
  const std::string response = sock.RecvUntilClose();
  EXPECT_NE(response.find("400 Bad Request"), std::string::npos) << response;
}

}  // namespace
}  // namespace net
}  // namespace e2gcl
