#include "tensor/rng.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace e2gcl {
namespace {

TEST(Rng, DeterministicGivenSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Uniform(), b.Uniform());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.Uniform() == b.Uniform()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const float u = rng.Uniform();
    EXPECT_GE(u, 0.0f);
    EXPECT_LT(u, 1.0f);
  }
}

TEST(Rng, UniformIntCoversDomain) {
  Rng rng(8);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 300; ++i) seen.insert(rng.UniformInt(5));
  EXPECT_EQ(seen.size(), 5u);
  for (std::int64_t v : seen) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 5);
  }
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(9);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0f));
    EXPECT_TRUE(rng.Bernoulli(1.0f));
    EXPECT_FALSE(rng.Bernoulli(-0.5f));
    EXPECT_TRUE(rng.Bernoulli(1.5f));
  }
}

TEST(Rng, BernoulliRoughRate) {
  Rng rng(10);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Bernoulli(0.3f)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, NormalRoughMoments) {
  Rng rng(11);
  double sum = 0.0, sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const float x = rng.Normal(2.0f, 3.0f);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.5);
}

TEST(SampleWithoutReplacement, DistinctAndInRange) {
  Rng rng(12);
  for (std::int64_t n : {5, 50, 500}) {
    for (std::int64_t k : {std::int64_t{0}, std::int64_t{1}, n / 2, n}) {
      auto s = rng.SampleWithoutReplacement(n, k);
      EXPECT_EQ(static_cast<std::int64_t>(s.size()), k);
      std::set<std::int64_t> uniq(s.begin(), s.end());
      EXPECT_EQ(static_cast<std::int64_t>(uniq.size()), k);
      for (std::int64_t v : s) {
        EXPECT_GE(v, 0);
        EXPECT_LT(v, n);
      }
    }
  }
}

TEST(SampleWithoutReplacement, RoughlyUniform) {
  Rng rng(13);
  std::vector<int> counts(10, 0);
  for (int t = 0; t < 3000; ++t) {
    for (std::int64_t v : rng.SampleWithoutReplacement(10, 3)) ++counts[v];
  }
  for (int c : counts) EXPECT_NEAR(c, 900, 150);
}

TEST(WeightedSample, ZeroWeightNeverPicked) {
  Rng rng(14);
  std::vector<float> w = {1.0f, 0.0f, 1.0f, 0.0f};
  for (int t = 0; t < 100; ++t) {
    for (std::int64_t v : rng.WeightedSampleWithoutReplacement(w, 2)) {
      EXPECT_TRUE(v == 0 || v == 2);
    }
  }
}

TEST(WeightedSample, AllZeroFallsBackToUniform) {
  Rng rng(15);
  std::vector<float> w = {0.0f, 0.0f, 0.0f};
  auto s = rng.WeightedSampleWithoutReplacement(w, 2);
  EXPECT_EQ(s.size(), 2u);
}

TEST(WeightedSample, HeavyWeightDominates) {
  Rng rng(16);
  std::vector<float> w = {100.0f, 1.0f, 1.0f};
  int first = 0;
  for (int t = 0; t < 500; ++t) {
    auto s = rng.WeightedSampleWithoutReplacement(w, 1);
    ASSERT_EQ(s.size(), 1u);
    if (s[0] == 0) ++first;
  }
  EXPECT_GT(first, 450);
}

TEST(WeightedSample, RequestMoreThanPositiveEntries) {
  Rng rng(17);
  std::vector<float> w = {1.0f, 0.0f, 2.0f};
  auto s = rng.WeightedSampleWithoutReplacement(w, 3);
  EXPECT_EQ(s.size(), 2u);  // Only two positive-weight entries exist.
}

TEST(Shuffle, IsPermutation) {
  Rng rng(18);
  std::vector<std::int64_t> v = {0, 1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Fork, ChildIndependentOfFurtherParentUse) {
  Rng parent(19);
  Rng child = parent.Fork();
  const float c1 = child.Uniform();
  Rng parent2(19);
  Rng child2 = parent2.Fork();
  parent2.Uniform();  // Using the parent afterwards must not change child2.
  EXPECT_EQ(child2.Uniform(), c1);
}

}  // namespace
}  // namespace e2gcl
