// Unit tests for the observability core (src/obs/): counter, gauge, and
// histogram semantics; span nesting and aggregation; deterministic
// shard-merge totals under 1/2/7 pool threads; and disabled-mode
// behavior (no values recorded, no thread shard ever created).

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/parallel_for.h"
#include "parallel/thread_pool.h"

namespace e2gcl {
namespace {

const HistogramSnapshot* FindHistogram(const MetricsSnapshot& snap,
                                       const std::string& name) {
  for (const HistogramSnapshot& h : snap.histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

const SpanSnapshot* FindSpan(const std::vector<SpanSnapshot>& spans,
                             const std::string& path) {
  for (const SpanSnapshot& s : spans) {
    if (s.path == path) return &s;
  }
  return nullptr;
}

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetObsEnabled(true);
    MetricsRegistry::Get().ResetValuesForTest();
    TraceRegistry::Get().ResetValuesForTest();
  }
  void TearDown() override { SetObsEnabled(true); }
};

// ---------------------------------------------------------------------------
// Counter / gauge / histogram semantics.
// ---------------------------------------------------------------------------

TEST_F(ObsTest, CounterAddsAndIncrements) {
  const Counter c = Counter::Get("test.counter_basic");
  c.Add(5);
  c.Increment();
  EXPECT_EQ(MetricsRegistry::Get().Snapshot().counter("test.counter_basic"),
            6u);
  EXPECT_EQ(MetricsRegistry::Get().Snapshot().counter("test.never_touched"),
            0u);
}

TEST_F(ObsTest, CounterHandlesWithSameNameShareOneSlot) {
  Counter::Get("test.counter_shared").Add(3);
  Counter::Get("test.counter_shared").Add(4);
  EXPECT_EQ(MetricsRegistry::Get().Snapshot().counter("test.counter_shared"),
            7u);
}

TEST_F(ObsTest, GaugeSetAddMaxSemantics) {
  const Gauge g = Gauge::Get("test.gauge_basic");
  g.Set(10);
  g.Add(-3);
  g.Max(5);   // below current value: no effect
  g.Max(42);  // raises
  const MetricsSnapshot snap = MetricsRegistry::Get().Snapshot();
  bool found = false;
  for (const auto& kv : snap.gauges) {
    if (kv.first == "test.gauge_basic") {
      EXPECT_EQ(kv.second, 42);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(ObsTest, HistogramBucketBoundariesAreInclusiveUpperBounds) {
  const Histogram h =
      Histogram::Get("test.hist_basic", {10, 20, 30});
  h.Record(5);    // bucket 0 (v <= 10)
  h.Record(10);   // bucket 0 (boundary is inclusive)
  h.Record(11);   // bucket 1
  h.Record(30);   // bucket 2
  h.Record(31);   // overflow bucket
  h.Record(100);  // overflow bucket
  const MetricsSnapshot full = MetricsRegistry::Get().Snapshot();
  const HistogramSnapshot* snap = FindHistogram(full, "test.hist_basic");
  ASSERT_NE(snap, nullptr);
  ASSERT_EQ(snap->bounds, (std::vector<std::int64_t>{10, 20, 30}));
  ASSERT_EQ(snap->counts.size(), 4u);
  EXPECT_EQ(snap->counts[0], 2u);
  EXPECT_EQ(snap->counts[1], 1u);
  EXPECT_EQ(snap->counts[2], 1u);
  EXPECT_EQ(snap->counts[3], 2u);
  EXPECT_EQ(snap->total, 6u);
}

TEST_F(ObsTest, SnapshotIsSortedByName) {
  Counter::Get("test.sorted_b").Increment();
  Counter::Get("test.sorted_a").Increment();
  const MetricsSnapshot snap = MetricsRegistry::Get().Snapshot();
  for (std::size_t i = 1; i < snap.counters.size(); ++i) {
    EXPECT_LT(snap.counters[i - 1].first, snap.counters[i].first);
  }
  for (std::size_t i = 1; i < snap.gauges.size(); ++i) {
    EXPECT_LT(snap.gauges[i - 1].first, snap.gauges[i].first);
  }
}

TEST_F(ObsTest, DeltaFromSubtractsCountersOnly) {
  Counter::Get("test.delta_old").Add(10);
  const MetricsSnapshot baseline = MetricsRegistry::Get().Snapshot();
  Counter::Get("test.delta_old").Add(7);
  Counter::Get("test.delta_new").Add(3);  // absent from baseline
  const MetricsSnapshot delta =
      MetricsRegistry::Get().Snapshot().DeltaFrom(baseline);
  EXPECT_EQ(delta.counter("test.delta_old"), 7u);
  EXPECT_EQ(delta.counter("test.delta_new"), 3u);
}

TEST_F(ObsTest, ResetValuesPreservesDefinitions) {
  Counter::Get("test.reset_me").Add(9);
  Histogram::Get("test.reset_hist", {1, 2}).Record(1);
  MetricsRegistry::Get().ResetValuesForTest();
  const MetricsSnapshot snap = MetricsRegistry::Get().Snapshot();
  EXPECT_EQ(snap.counter("test.reset_me"), 0u);
  const HistogramSnapshot* h = FindHistogram(snap, "test.reset_hist");
  ASSERT_NE(h, nullptr);  // definition survives
  EXPECT_EQ(h->total, 0u);
}

// ---------------------------------------------------------------------------
// Deterministic shard merge: the same parallel recording pattern must
// produce identical merged totals at every pool size.
// ---------------------------------------------------------------------------

TEST_F(ObsTest, ShardMergeIsDeterministicAcrossThreadCounts) {
  const int kThreadCounts[] = {1, 2, 7};
  std::vector<std::pair<std::string, std::uint64_t>> reference_counters;
  std::vector<std::uint64_t> reference_hist;
  for (const int threads : kThreadCounts) {
    SetNumThreads(threads);
    MetricsRegistry::Get().ResetValuesForTest();
    const Counter c = Counter::Get("test.merge_counter");
    const Histogram h = Histogram::Get("test.merge_hist", {8, 16, 32});
    ParallelFor(0, 1000, 64, [&](std::int64_t b, std::int64_t e) {
      for (std::int64_t i = b; i < e; ++i) {
        c.Add(static_cast<std::uint64_t>(i + 1));
        h.Record(i % 50);
      }
    });
    const MetricsSnapshot snap = MetricsRegistry::Get().Snapshot();
    EXPECT_EQ(snap.counter("test.merge_counter"), 500500u)
        << "threads=" << threads;
    const HistogramSnapshot* hist = FindHistogram(snap, "test.merge_hist");
    ASSERT_NE(hist, nullptr);
    EXPECT_EQ(hist->total, 1000u);
    if (threads == kThreadCounts[0]) {
      reference_counters = snap.counters;
      reference_hist = hist->counts;
    } else {
      // Counters (including the pool's own size-based parallel.* ones)
      // and histogram buckets are bit-identical; gauges are
      // scheduling-dependent and deliberately not compared.
      EXPECT_EQ(snap.counters, reference_counters) << "threads=" << threads;
      EXPECT_EQ(hist->counts, reference_hist) << "threads=" << threads;
    }
  }
  SetNumThreads(4);
}

// ---------------------------------------------------------------------------
// Disabled mode.
// ---------------------------------------------------------------------------

TEST_F(ObsTest, DisabledModeRecordsNoValues) {
  const Counter c = Counter::Get("test.disabled_counter");
  const Gauge g = Gauge::Get("test.disabled_gauge");
  const Histogram h = Histogram::Get("test.disabled_hist", {1, 2});
  SetObsEnabled(false);
  EXPECT_FALSE(ObsEnabled());
  c.Add(100);
  g.Set(100);
  h.Record(1);
  SetObsEnabled(true);
  const MetricsSnapshot snap = MetricsRegistry::Get().Snapshot();
  EXPECT_EQ(snap.counter("test.disabled_counter"), 0u);
  const HistogramSnapshot* hist = FindHistogram(snap, "test.disabled_hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->total, 0u);
}

TEST_F(ObsTest, DisabledModeNeverCreatesAThreadShard) {
  const Counter c = Counter::Get("test.disabled_shard");
  SetObsEnabled(false);
  const std::int64_t shards_before = MetricsRegistry::Get().NumShardsForTest();
  // A brand-new thread recording while disabled must not allocate a
  // shard — the disabled path is a single relaxed load.
  std::thread t([&] {
    for (int i = 0; i < 100; ++i) c.Increment();
  });
  t.join();
  EXPECT_EQ(MetricsRegistry::Get().NumShardsForTest(), shards_before);
  SetObsEnabled(true);
  // Enabled, the same pattern does create (and then retire) a shard; the
  // recorded values survive thread exit.
  std::thread t2([&] { c.Add(5); });
  t2.join();
  EXPECT_EQ(MetricsRegistry::Get().Snapshot().counter("test.disabled_shard"),
            5u);
}

// ---------------------------------------------------------------------------
// Trace spans.
// ---------------------------------------------------------------------------

TEST_F(ObsTest, SpansNestAndAggregateByPath) {
  {
    TraceSpan outer("obs_test_outer");
    {
      TraceSpan inner("obs_test_inner");
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    { TraceSpan inner("obs_test_inner"); }
  }
  { TraceSpan outer("obs_test_outer"); }
  const std::vector<SpanSnapshot> spans = TraceRegistry::Get().Snapshot();
  const SpanSnapshot* outer = FindSpan(spans, "obs_test_outer");
  const SpanSnapshot* inner = FindSpan(spans, "obs_test_outer/obs_test_inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->count, 2u);
  EXPECT_EQ(inner->count, 2u);
  EXPECT_GT(inner->seconds, 0.0);
  // The outer span strictly contains the inner ones.
  EXPECT_GE(outer->seconds, inner->seconds);
  // The same name at top level is a different node than the nested one.
  EXPECT_EQ(FindSpan(spans, "obs_test_inner"), nullptr);
}

TEST_F(ObsTest, SpanSnapshotIsPreOrderWithSiblingsInCreationOrder) {
  {
    TraceSpan parent("obs_test_order");
    { TraceSpan a("obs_test_first"); }
    { TraceSpan b("obs_test_second"); }
  }
  const std::vector<SpanSnapshot> spans = TraceRegistry::Get().Snapshot();
  std::size_t parent_at = spans.size(), first_at = spans.size(),
              second_at = spans.size();
  for (std::size_t i = 0; i < spans.size(); ++i) {
    if (spans[i].path == "obs_test_order") parent_at = i;
    if (spans[i].path == "obs_test_order/obs_test_first") first_at = i;
    if (spans[i].path == "obs_test_order/obs_test_second") second_at = i;
  }
  ASSERT_LT(parent_at, spans.size());
  ASSERT_LT(first_at, spans.size());
  ASSERT_LT(second_at, spans.size());
  EXPECT_LT(parent_at, first_at);
  EXPECT_LT(first_at, second_at);
}

TEST_F(ObsTest, SpanResetZeroesTotalsButKeepsTree) {
  { TraceSpan s("obs_test_reset"); }
  TraceRegistry::Get().ResetValuesForTest();
  const std::vector<SpanSnapshot> spans = TraceRegistry::Get().Snapshot();
  const SpanSnapshot* s = FindSpan(spans, "obs_test_reset");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->count, 0u);
  EXPECT_EQ(s->seconds, 0.0);
}

TEST_F(ObsTest, DisabledSpansRecordNothing) {
  SetObsEnabled(false);
  { TraceSpan s("obs_test_disabled_span"); }
  SetObsEnabled(true);
  const std::vector<SpanSnapshot> spans = TraceRegistry::Get().Snapshot();
  EXPECT_EQ(FindSpan(spans, "obs_test_disabled_span"), nullptr);
}

}  // namespace
}  // namespace e2gcl
