// Embedding-serving layer: bit-identity across {cold, cached} x {solo,
// batched} x thread counts, LRU cache semantics, deadline/size batch
// flushing, checkpoint validation, and concurrent-client correctness
// (the latter is the TSAN target registered in check_sanitizers.sh).

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "graph/generators.h"
#include "io/checkpoint.h"
#include "nn/gcn.h"
#include "obs/metrics.h"
#include "parallel/thread_pool.h"
#include "serve/embedding_server.h"
#include "serve/lru_cache.h"
#include "serve/quantized_table.h"
#include "tensor/simd/simd.h"

namespace e2gcl {
namespace {

namespace fs = std::filesystem;

constexpr int kThreadCounts[] = {1, 2, 7};

Graph ServeGraph(std::uint64_t seed = 7) {
  SbmSpec spec;
  spec.num_nodes = 120;
  spec.num_classes = 3;
  spec.feature_dim = 16;
  spec.avg_degree = 6;
  spec.informative_dims_per_class = 4;
  return GenerateSbm(spec, seed);
}

GcnConfig ServeEncoderConfig(const Graph& g) {
  GcnConfig cfg;
  cfg.dims = {g.feature_dim(), 12, 8};
  return cfg;
}

/// A checkpoint holding a freshly initialized (deterministic) encoder.
TrainerCheckpoint MakeCheckpoint(const Graph& g, std::uint64_t seed = 3) {
  Rng rng(seed);
  GcnEncoder encoder(ServeEncoderConfig(g), rng);
  TrainerCheckpoint ckpt;
  ckpt.epoch = 0;
  ckpt.config_fingerprint = 0xfeedULL;
  ckpt.encoder_params = encoder.params().CloneValues();
  return ckpt;
}

/// Reference embeddings computed by the offline full-graph path.
Matrix ReferenceEmbeddings(const Graph& g, const TrainerCheckpoint& ckpt) {
  Rng rng(0);
  GcnEncoder encoder(ServeEncoderConfig(g), rng);
  encoder.params().LoadValues(ckpt.encoder_params);
  return encoder.Encode(g);
}

std::vector<float> RowOf(const Matrix& m, std::int64_t r) {
  return std::vector<float>(m.RowPtr(r), m.RowPtr(r) + m.cols());
}

// --- EncodeRows (the lazy-serving primitive). ------------------------------

TEST(EncodeRows, MatchesFullEncodeBitIdentically) {
  Graph g = ServeGraph();
  Rng rng(11);
  GcnEncoder encoder(ServeEncoderConfig(g), rng);
  const Matrix full = encoder.Encode(g);
  const CsrMatrix adj = NormalizedAdjacency(g);

  // Unsorted, repeated indices; every row must equal the full-encode row.
  const std::vector<std::int64_t> nodes = {5, 0, 119, 5, 42, 7, 7, 64};
  const Matrix rows = encoder.EncodeRows(adj, g.features, nodes);
  ASSERT_EQ(rows.rows(), static_cast<std::int64_t>(nodes.size()));
  ASSERT_EQ(rows.cols(), full.cols());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    EXPECT_EQ(RowOf(rows, static_cast<std::int64_t>(i)),
              RowOf(full, nodes[i]))
        << "node " << nodes[i];
  }
}

TEST(EncodeRows, BitIdenticalAtAllThreadCounts) {
  Graph g = ServeGraph();
  Rng rng(11);
  GcnEncoder encoder(ServeEncoderConfig(g), rng);
  const CsrMatrix adj = NormalizedAdjacency(g);
  const std::vector<std::int64_t> nodes = {3, 77, 41, 0, 118};

  SetNumThreads(1);
  const Matrix baseline = encoder.EncodeRows(adj, g.features, nodes);
  for (int threads : kThreadCounts) {
    SetNumThreads(threads);
    EXPECT_TRUE(encoder.EncodeRows(adj, g.features, nodes) == baseline)
        << "threads=" << threads;
  }
  SetNumThreads(1);
}

TEST(EncodeRows, CoversEveryNodeAtOnce) {
  Graph g = ServeGraph();
  Rng rng(11);
  GcnEncoder encoder(ServeEncoderConfig(g), rng);
  const CsrMatrix adj = NormalizedAdjacency(g);
  std::vector<std::int64_t> all(g.num_nodes);
  for (std::int64_t i = 0; i < g.num_nodes; ++i) all[i] = i;
  EXPECT_TRUE(encoder.EncodeRows(adj, g.features, all) == encoder.Encode(g));
}

// --- ShardedRowCache. ------------------------------------------------------

TEST(ShardedRowCache, EvictsLeastRecentlyUsedWithinShard) {
  // One shard, two slots: deterministic LRU order.
  ShardedRowCache cache(2, 1);
  cache.Put(1, {1.0f});
  cache.Put(2, {2.0f});
  std::vector<float> row;
  ASSERT_TRUE(cache.Get(1, &row));  // 1 is now most recent
  EXPECT_EQ(row, std::vector<float>{1.0f});
  cache.Put(3, {3.0f});  // evicts 2, the LRU entry
  EXPECT_FALSE(cache.Contains(2));
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_TRUE(cache.Contains(3));
  EXPECT_EQ(cache.Size(), 2);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 0u);
  EXPECT_FALSE(cache.Get(2, &row));
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(ShardedRowCache, PutRefreshesExistingEntry) {
  ShardedRowCache cache(2, 1);
  cache.Put(1, {1.0f});
  cache.Put(2, {2.0f});
  cache.Put(1, {1.5f});  // refresh: 2 becomes LRU
  cache.Put(3, {3.0f});
  EXPECT_FALSE(cache.Contains(2));
  std::vector<float> row;
  ASSERT_TRUE(cache.Get(1, &row));
  EXPECT_EQ(row, std::vector<float>{1.5f});
}

TEST(ShardedRowCache, ShardsAreIndependent) {
  // Capacity 4 over 2 shards -> 2 slots per shard; even/odd keys map to
  // different shards, so 3 even inserts evict only among even keys.
  ShardedRowCache cache(4, 2);
  EXPECT_EQ(cache.per_shard_capacity(), 2);
  cache.Put(0, {0.0f});
  cache.Put(2, {2.0f});
  cache.Put(4, {4.0f});  // evicts 0
  cache.Put(1, {1.0f});
  EXPECT_FALSE(cache.Contains(0));
  EXPECT_TRUE(cache.Contains(2));
  EXPECT_TRUE(cache.Contains(4));
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_EQ(cache.Size(), 3);
}

// --- EmbeddingServer. ------------------------------------------------------

TEST(EmbeddingServer, ColdCachedSoloAndBatchedRowsAreBitIdentical) {
  Graph g = ServeGraph();
  TrainerCheckpoint ckpt = MakeCheckpoint(g);
  const Matrix reference = ReferenceEmbeddings(g, ckpt);

  for (bool precompute : {false, true}) {
    ServeOptions opt;
    opt.precompute = precompute;
    opt.max_batch = 1;  // solo
    opt.batch_deadline_us = 0;
    std::string error;
    auto server = EmbeddingServer::FromCheckpoint(g, ckpt, opt, &error);
    ASSERT_NE(server, nullptr) << error;
    for (std::int64_t node : {0, 17, 64, 119}) {
      const std::vector<float> cold = server->GetEmbedding(node);
      const std::vector<float> cached = server->GetEmbedding(node);
      EXPECT_EQ(cold, RowOf(reference, node))
          << "precompute=" << precompute << " node=" << node;
      EXPECT_EQ(cold, cached);
    }
  }

  // Batched: one client per node, large batch budget.
  ServeOptions opt;
  opt.max_batch = 64;
  opt.batch_deadline_us = 2000;
  std::string error;
  auto server = EmbeddingServer::FromCheckpoint(g, ckpt, opt, &error);
  ASSERT_NE(server, nullptr) << error;
  std::vector<std::thread> clients;
  std::vector<std::vector<float>> rows(static_cast<std::size_t>(g.num_nodes));
  for (std::int64_t node = 0; node < g.num_nodes; ++node) {
    clients.emplace_back(
        [&, node] { rows[node] = server->GetEmbedding(node); });
  }
  for (std::thread& t : clients) t.join();
  for (std::int64_t node = 0; node < g.num_nodes; ++node) {
    EXPECT_EQ(rows[node], RowOf(reference, node)) << "node=" << node;
  }
}

TEST(EmbeddingServer, BitIdenticalAtAllThreadCounts) {
  Graph g = ServeGraph();
  TrainerCheckpoint ckpt = MakeCheckpoint(g);
  SetNumThreads(1);
  const Matrix reference = ReferenceEmbeddings(g, ckpt);

  for (int threads : kThreadCounts) {
    SetNumThreads(threads);
    for (bool precompute : {false, true}) {
      ServeOptions opt;
      opt.precompute = precompute;
      opt.max_batch = 8;
      opt.batch_deadline_us = 100;
      std::string error;
      auto server = EmbeddingServer::FromCheckpoint(g, ckpt, opt, &error);
      ASSERT_NE(server, nullptr) << error;
      for (std::int64_t node : {2, 59, 113}) {
        EXPECT_EQ(server->GetEmbedding(node), RowOf(reference, node))
            << "threads=" << threads << " precompute=" << precompute;
      }
    }
  }
  SetNumThreads(1);
}

TEST(EmbeddingServer, ScoreLinkEqualsDotOfEmbeddingRows) {
  Graph g = ServeGraph();
  TrainerCheckpoint ckpt = MakeCheckpoint(g);
  const Matrix reference = ReferenceEmbeddings(g, ckpt);
  ServeOptions opt;
  std::string error;
  auto server = EmbeddingServer::FromCheckpoint(g, ckpt, opt, &error);
  ASSERT_NE(server, nullptr) << error;

  const std::vector<std::pair<std::int64_t, std::int64_t>> pairs = {
      {0, 1}, {5, 90}, {119, 119}};
  for (const auto& [u, v] : pairs) {
    // Expected through the same simd::Dot kernel the server uses; a
    // hand-rolled serial loop would differ in the last ulps under the
    // AVX2 backend (per-build-config determinism contract).
    const float expected =
        simd::Dot(reference.RowPtr(u), reference.RowPtr(v), reference.cols());
    EXPECT_EQ(server->ScoreLink(u, v), expected) << u << "," << v;
  }
}

TEST(EmbeddingServer, TopKSimilarMatchesBruteForceAndExcludesSelf) {
  Graph g = ServeGraph();
  TrainerCheckpoint ckpt = MakeCheckpoint(g);
  const Matrix reference = ReferenceEmbeddings(g, ckpt);
  ServeOptions opt;
  std::string error;
  auto server = EmbeddingServer::FromCheckpoint(g, ckpt, opt, &error);
  ASSERT_NE(server, nullptr) << error;

  const std::int64_t query = 31;
  const std::int64_t k = 5;
  TopKResult got = server->TopKSimilar(query, k);
  ASSERT_EQ(got.nodes.size(), static_cast<std::size_t>(k));
  ASSERT_EQ(got.scores.size(), static_cast<std::size_t>(k));

  // Brute force (via the server's dot kernel) with the same total order
  // (score desc, id asc).
  std::vector<std::pair<float, std::int64_t>> all;
  for (std::int64_t i = 0; i < g.num_nodes; ++i) {
    if (i == query) continue;
    all.push_back({simd::Dot(reference.RowPtr(query), reference.RowPtr(i),
                             reference.cols()),
                   i});
  }
  std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  for (std::int64_t i = 0; i < k; ++i) {
    EXPECT_EQ(got.nodes[i], all[i].second) << "rank " << i;
    EXPECT_EQ(got.scores[i], all[i].first) << "rank " << i;
  }

  // Lazy and precompute TopK agree bit-for-bit.
  ServeOptions pre = opt;
  pre.precompute = true;
  auto server2 = EmbeddingServer::FromCheckpoint(g, ckpt, pre, &error);
  ASSERT_NE(server2, nullptr) << error;
  TopKResult got2 = server2->TopKSimilar(query, k);
  EXPECT_EQ(got.nodes, got2.nodes);
  EXPECT_EQ(got.scores, got2.scores);
}

// --- Int8 quantized serving. -----------------------------------------------

TEST(QuantizedEmbeddingTable, RoundTripsWithinOneQuantizationStep) {
  Graph g = ServeGraph();
  TrainerCheckpoint ckpt = MakeCheckpoint(g);
  const Matrix reference = ReferenceEmbeddings(g, ckpt);
  const QuantizedEmbeddingTable table = QuantizedEmbeddingTable::Build(
      reference);
  ASSERT_EQ(table.rows(), reference.rows());
  ASSERT_EQ(table.cols(), reference.cols());
  // Memory: one byte per coefficient + one float per row, ~4x under fp32.
  EXPECT_EQ(table.MemoryBytes(),
            reference.rows() * reference.cols() +
                reference.rows() * static_cast<std::int64_t>(sizeof(float)));
  for (std::int64_t r = 0; r < reference.rows(); ++r) {
    const float scale = table.scale(r);
    for (std::int64_t c = 0; c < reference.cols(); ++c) {
      const float back = static_cast<float>(table.RowPtr(r)[c]) * scale;
      // Symmetric rounding: off by at most half a step.
      EXPECT_NEAR(back, reference(r, c), scale * 0.5f + 1e-7f)
          << r << "," << c;
    }
  }
}

TEST(QuantizedEmbeddingTable, ScoreAllIsThreadCountInvariant) {
  Graph g = ServeGraph();
  TrainerCheckpoint ckpt = MakeCheckpoint(g);
  const Matrix reference = ReferenceEmbeddings(g, ckpt);
  const QuantizedEmbeddingTable table = QuantizedEmbeddingTable::Build(
      reference);
  std::vector<std::int8_t> q;
  const float qscale = table.QuantizeQuery(reference.RowPtr(17), &q);
  SetNumThreads(1);
  std::vector<float> baseline;
  table.ScoreAll(q.data(), qscale, &baseline);
  for (int threads : kThreadCounts) {
    SetNumThreads(threads);
    std::vector<float> scores;
    table.ScoreAll(q.data(), qscale, &scores);
    EXPECT_EQ(scores, baseline) << "threads=" << threads;
  }
  SetNumThreads(1);
}

TEST(EmbeddingServer, QuantizedTopKWithRescoreMatchesFp32Exactly) {
  Graph g = ServeGraph();
  TrainerCheckpoint ckpt = MakeCheckpoint(g);
  ServeOptions fp32;
  std::string error;
  auto exact_server = EmbeddingServer::FromCheckpoint(g, ckpt, fp32, &error);
  ASSERT_NE(exact_server, nullptr) << error;
  ServeOptions quant;
  quant.quantize_int8 = true;  // default rescore_factor = 4
  auto quant_server = EmbeddingServer::FromCheckpoint(g, ckpt, quant, &error);
  ASSERT_NE(quant_server, nullptr) << error;
  EXPECT_FALSE(quant_server->quantized().empty());

  // With the exact fp32 rescore, the quantized path must return the same
  // node sets AND the same exact scores as the fp32 scan on every query
  // here (the true top-k comfortably survives into the k*4 candidate
  // pool on this fixture).
  for (std::int64_t query : {0L, 17L, 31L, 64L, 119L}) {
    const TopKResult want = exact_server->TopKSimilar(query, 5);
    const TopKResult got = quant_server->TopKSimilar(query, 5);
    EXPECT_EQ(got.nodes, want.nodes) << "query " << query;
    EXPECT_EQ(got.scores, want.scores) << "query " << query;
  }
}

TEST(EmbeddingServer, QuantizedTopKWithoutRescoreRanksByApproxScores) {
  Graph g = ServeGraph();
  TrainerCheckpoint ckpt = MakeCheckpoint(g);
  const Matrix reference = ReferenceEmbeddings(g, ckpt);
  ServeOptions quant;
  quant.quantize_int8 = true;
  quant.rescore_factor = 0;  // approximate scores straight from int8
  std::string error;
  auto server = EmbeddingServer::FromCheckpoint(g, ckpt, quant, &error);
  ASSERT_NE(server, nullptr) << error;

  const std::int64_t query = 31;
  const TopKResult got = server->TopKSimilar(query, 5);
  ASSERT_EQ(got.nodes.size(), 5u);
  // Reproduce the approximate scan out-of-process.
  const QuantizedEmbeddingTable table = QuantizedEmbeddingTable::Build(
      reference);
  std::vector<std::int8_t> q;
  const float qscale = table.QuantizeQuery(reference.RowPtr(query), &q);
  std::vector<float> approx;
  table.ScoreAll(q.data(), qscale, &approx);
  std::vector<std::pair<float, std::int64_t>> all;
  for (std::int64_t i = 0; i < g.num_nodes; ++i) {
    if (i != query) all.push_back({approx[static_cast<std::size_t>(i)], i});
  }
  std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  for (std::size_t i = 0; i < 5u; ++i) {
    EXPECT_EQ(got.nodes[i], all[i].second) << "rank " << i;
    EXPECT_EQ(got.scores[i], all[i].first) << "rank " << i;
  }
}

TEST(EmbeddingServer, QuantizedModeKeepsEmbeddingAndScoreExact) {
  Graph g = ServeGraph();
  TrainerCheckpoint ckpt = MakeCheckpoint(g);
  const Matrix reference = ReferenceEmbeddings(g, ckpt);
  ServeOptions quant;
  quant.quantize_int8 = true;
  std::string error;
  auto server = EmbeddingServer::FromCheckpoint(g, ckpt, quant, &error);
  ASSERT_NE(server, nullptr) << error;
  EXPECT_EQ(server->GetEmbedding(42), RowOf(reference, 42));
  EXPECT_EQ(server->ScoreLink(3, 99),
            simd::Dot(reference.RowPtr(3), reference.RowPtr(99),
                      reference.cols()));
}

TEST(EmbeddingServer, DeadlineFlushesPartialBatch) {
  Graph g = ServeGraph();
  TrainerCheckpoint ckpt = MakeCheckpoint(g);
  ServeOptions opt;
  opt.max_batch = 1000;          // can never fill from one client
  opt.batch_deadline_us = 2000;  // so the deadline must flush it
  opt.batch_gap_us = 2000;       // linger the full deadline
  std::string error;
  auto server = EmbeddingServer::FromCheckpoint(g, ckpt, opt, &error);
  ASSERT_NE(server, nullptr) << error;
  const Matrix reference = ReferenceEmbeddings(g, ckpt);
  EXPECT_EQ(server->GetEmbedding(42), RowOf(reference, 42));
}

TEST(EmbeddingServer, FullBatchFlushesBeforeDeadline) {
  Graph g = ServeGraph();
  TrainerCheckpoint ckpt = MakeCheckpoint(g);
  ServeOptions opt;
  opt.max_batch = 4;
  opt.batch_deadline_us = 30'000'000;  // a deadline-only flush would stall
  opt.batch_gap_us = 30'000'000;       // and so would the linger gap
  std::string error;
  auto server = EmbeddingServer::FromCheckpoint(g, ckpt, opt, &error);
  ASSERT_NE(server, nullptr) << error;
  const Matrix reference = ReferenceEmbeddings(g, ckpt);
  // 8 clients = two full batches; completing at all proves size-triggered
  // flushing (the test would otherwise take 30 s per batch).
  std::vector<std::thread> clients;
  std::vector<std::vector<float>> rows(8);
  for (int i = 0; i < 8; ++i) {
    clients.emplace_back([&, i] { rows[i] = server->GetEmbedding(i * 13); });
  }
  for (std::thread& t : clients) t.join();
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(rows[i], RowOf(reference, i * 13));
  }
}

TEST(EmbeddingServer, LruCacheEvictsButServesCorrectRows) {
  Graph g = ServeGraph();
  TrainerCheckpoint ckpt = MakeCheckpoint(g);
  const Matrix reference = ReferenceEmbeddings(g, ckpt);
  ServeOptions opt;
  opt.cache_capacity = 4;
  opt.cache_shards = 2;
  opt.max_batch = 1;
  std::string error;
  auto server = EmbeddingServer::FromCheckpoint(g, ckpt, opt, &error);
  ASSERT_NE(server, nullptr) << error;
  ASSERT_NE(server->cache(), nullptr);
  // Sweep far more rows than the cache holds, twice; every row must stay
  // correct through evictions and recomputation.
  for (int pass = 0; pass < 2; ++pass) {
    for (std::int64_t node = 0; node < 32; ++node) {
      EXPECT_EQ(server->GetEmbedding(node), RowOf(reference, node))
          << "pass=" << pass << " node=" << node;
    }
  }
  EXPECT_LE(server->cache()->Size(), 4);
  EXPECT_GT(server->cache()->misses(), 0u);
}

TEST(EmbeddingServer, ConcurrentMixedClientsSeeConsistentResults) {
  Graph g = ServeGraph();
  TrainerCheckpoint ckpt = MakeCheckpoint(g);
  const Matrix reference = ReferenceEmbeddings(g, ckpt);
  ServeOptions opt;
  opt.cache_capacity = 64;  // force eviction churn under load
  opt.max_batch = 16;
  opt.batch_deadline_us = 500;
  std::string error;
  auto server = EmbeddingServer::FromCheckpoint(g, ckpt, opt, &error);
  ASSERT_NE(server, nullptr) << error;

  constexpr int kClients = 8;
  constexpr int kQueriesPerClient = 40;
  std::vector<std::thread> clients;
  std::vector<int> failures(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(1000 + static_cast<std::uint64_t>(c));
      for (int q = 0; q < kQueriesPerClient; ++q) {
        const std::int64_t node = rng.UniformInt(g.num_nodes);
        const std::int64_t other = rng.UniformInt(g.num_nodes);
        switch (q % 3) {
          case 0: {
            if (server->GetEmbedding(node) != RowOf(reference, node)) {
              ++failures[c];
            }
            break;
          }
          case 1: {
            const float expected = simd::Dot(
                reference.RowPtr(node), reference.RowPtr(other),
                reference.cols());
            if (server->ScoreLink(node, other) != expected) ++failures[c];
            break;
          }
          default: {
            TopKResult r = server->TopKSimilar(node, 3);
            if (r.nodes.size() != 3u) ++failures[c];
            break;
          }
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(failures[c], 0) << "client " << c;
  }
}

TEST(EmbeddingServer, RecordsCacheAndBatchMetrics) {
  Graph g = ServeGraph();
  TrainerCheckpoint ckpt = MakeCheckpoint(g);
  SetObsEnabled(true);
  MetricsRegistry::Get().ResetValuesForTest();
  {
    ServeOptions opt;
    opt.max_batch = 1;
    std::string error;
    auto server = EmbeddingServer::FromCheckpoint(g, ckpt, opt, &error);
    ASSERT_NE(server, nullptr) << error;
    server->GetEmbedding(1);  // cold: miss + compute
    server->GetEmbedding(1);  // hot: hit
  }
  const MetricsSnapshot snap = MetricsRegistry::Get().Snapshot();
  EXPECT_EQ(snap.counter("serve.requests"), 2u);
  EXPECT_EQ(snap.counter("serve.batches"), 2u);
  EXPECT_EQ(snap.counter("serve.cache.misses"), 1u);
  EXPECT_EQ(snap.counter("serve.cache.hits"), 1u);
  EXPECT_EQ(snap.counter("serve.rows_computed"), 1u);
}

// --- Checkpoint loading & validation. --------------------------------------

class ServeLoadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("e2gcl_serve_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name()) +
             "_" + std::to_string(::getpid())))
               .string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir_;
};

TEST_F(ServeLoadTest, LoadsValidCheckpointAndServes) {
  Graph g = ServeGraph();
  TrainerCheckpoint ckpt = MakeCheckpoint(g);
  const std::string path = dir_ + "/ckpt.e2gcl";
  ASSERT_TRUE(SaveTrainerCheckpoint(path, ckpt));

  ServeOptions opt;
  std::string error;
  auto server = EmbeddingServer::Load(g, path, opt, &error);
  ASSERT_NE(server, nullptr) << error;
  EXPECT_EQ(server->num_nodes(), g.num_nodes);
  EXPECT_EQ(server->embed_dim(), 8);
  const Matrix reference = ReferenceEmbeddings(g, ckpt);
  EXPECT_EQ(server->GetEmbedding(9), RowOf(reference, 9));
}

TEST_F(ServeLoadTest, RejectsCorruptedCheckpoint) {
  Graph g = ServeGraph();
  TrainerCheckpoint ckpt = MakeCheckpoint(g);
  const std::string path = dir_ + "/ckpt.e2gcl";
  ASSERT_TRUE(SaveTrainerCheckpoint(path, ckpt));
  // Flip one payload byte: the per-section CRC must catch it.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    f.seekg(64);
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    f.seekp(64);
    f.write(&byte, 1);
  }
  ServeOptions opt;
  std::string error;
  EXPECT_EQ(EmbeddingServer::Load(g, path, opt, &error), nullptr);
  EXPECT_NE(error.find("validation"), std::string::npos) << error;
}

TEST_F(ServeLoadTest, RejectsFingerprintMismatch) {
  Graph g = ServeGraph();
  TrainerCheckpoint ckpt = MakeCheckpoint(g);
  ServeOptions opt;
  opt.expected_fingerprint = ckpt.config_fingerprint + 1;
  std::string error;
  EXPECT_EQ(EmbeddingServer::FromCheckpoint(g, ckpt, opt, &error), nullptr);
  EXPECT_NE(error.find("fingerprint"), std::string::npos) << error;

  opt.expected_fingerprint = ckpt.config_fingerprint;
  EXPECT_NE(EmbeddingServer::FromCheckpoint(g, ckpt, opt, &error), nullptr)
      << error;
}

TEST_F(ServeLoadTest, RejectsGraphWithWrongFeatureDim) {
  Graph g = ServeGraph();
  TrainerCheckpoint ckpt = MakeCheckpoint(g);
  SbmSpec spec;
  spec.num_nodes = 40;
  spec.num_classes = 2;
  spec.feature_dim = 10;  // != the checkpoint's input width 16
  spec.informative_dims_per_class = 3;
  Graph other = GenerateSbm(spec, 5);
  ServeOptions opt;
  std::string error;
  EXPECT_EQ(EmbeddingServer::FromCheckpoint(other, ckpt, opt, &error),
            nullptr);
  EXPECT_NE(error.find("feature"), std::string::npos) << error;
}

TEST(InferEncoderLayout, RecognizesBiasAndWeightOnlyChains) {
  // Bias layout: W0 (16x12), b0 (1x12), W1 (12x8), b1 (1x8).
  std::vector<Matrix> with_bias;
  with_bias.emplace_back(16, 12);
  with_bias.emplace_back(1, 12);
  with_bias.emplace_back(12, 8);
  with_bias.emplace_back(1, 8);
  std::vector<std::int64_t> dims;
  bool bias = false;
  ASSERT_TRUE(InferEncoderLayout(with_bias, &dims, &bias));
  EXPECT_TRUE(bias);
  EXPECT_EQ(dims, (std::vector<std::int64_t>{16, 12, 8}));

  std::vector<Matrix> no_bias;
  no_bias.emplace_back(16, 12);
  no_bias.emplace_back(12, 8);
  ASSERT_TRUE(InferEncoderLayout(no_bias, &dims, &bias));
  EXPECT_FALSE(bias);
  EXPECT_EQ(dims, (std::vector<std::int64_t>{16, 12, 8}));

  // A broken chain (inner dims disagree) parses as neither layout.
  std::vector<Matrix> broken;
  broken.emplace_back(16, 12);
  broken.emplace_back(10, 8);
  EXPECT_FALSE(InferEncoderLayout(broken, &dims, &bias));
  EXPECT_FALSE(InferEncoderLayout({}, &dims, &bias));
}

}  // namespace
}  // namespace e2gcl
