#include "graph/generators.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "graph/datasets.h"
#include "obs/metrics.h"
#include "test_util.h"

namespace e2gcl {
namespace {

SbmSpec TestSpec() {
  SbmSpec s;
  s.num_nodes = 600;
  s.num_classes = 4;
  s.feature_dim = 48;
  s.avg_degree = 8.0;
  s.homophily = 0.85;
  s.informative_dims_per_class = 6;
  return s;
}

TEST(GenerateSbm, DeterministicInSeed) {
  Graph a = GenerateSbm(TestSpec(), 7);
  Graph b = GenerateSbm(TestSpec(), 7);
  EXPECT_EQ(a.col, b.col);
  EXPECT_TRUE(a.features == b.features);
  EXPECT_EQ(a.labels, b.labels);
}

TEST(GenerateSbm, DifferentSeedsDiffer) {
  Graph a = GenerateSbm(TestSpec(), 1);
  Graph b = GenerateSbm(TestSpec(), 2);
  EXPECT_NE(a.col, b.col);
}

TEST(GenerateSbm, MatchesRequestedSize) {
  Graph g = GenerateSbm(TestSpec(), 3);
  EXPECT_EQ(g.num_nodes, 600);
  EXPECT_EQ(g.feature_dim(), 48);
  EXPECT_EQ(g.num_classes, 4);
  EXPECT_NEAR(g.AverageDegree(), 8.0, 2.0);
}

TEST(GenerateSbm, AllClassesNonEmpty) {
  Graph g = GenerateSbm(TestSpec(), 4);
  std::vector<int> count(4, 0);
  for (std::int64_t v = 0; v < g.num_nodes; ++v) ++count[g.labels[v]];
  for (int c : count) EXPECT_GT(c, 0);
}

TEST(GenerateSbm, HomophilyRealized) {
  Graph g = GenerateSbm(TestSpec(), 5);
  std::int64_t intra = 0, total = 0;
  for (const auto& [u, v] : UndirectedEdges(g)) {
    ++total;
    if (g.labels[u] == g.labels[v]) ++intra;
  }
  const double ratio = static_cast<double>(intra) / total;
  EXPECT_GT(ratio, 0.7);  // homophily = 0.85 requested
}

TEST(GenerateSbm, SignalDimensionsClassCorrelated) {
  Graph g = GenerateSbm(TestSpec(), 6);
  const std::int64_t block = 6;
  // Mean activation of a node's own class block must dominate other
  // classes' blocks.
  double own = 0.0, other = 0.0;
  std::int64_t n_own = 0, n_other = 0;
  for (std::int64_t v = 0; v < g.num_nodes; ++v) {
    const std::int64_t c = g.labels[v];
    for (std::int64_t d = 0; d < 4 * block; ++d) {
      const bool own_block = d >= c * block && d < (c + 1) * block;
      if (own_block) {
        own += g.features(v, d);
        ++n_own;
      } else {
        other += g.features(v, d);
        ++n_other;
      }
    }
  }
  EXPECT_GT(own / n_own, 3.0 * (other / n_other));
}

TEST(GenerateSbm, FeaturesNonNegative) {
  Graph g = GenerateSbm(TestSpec(), 8);
  for (std::int64_t i = 0; i < g.features.size(); ++i) {
    EXPECT_GE(g.features.data()[i], 0.0f);
  }
}

TEST(GenerateSbm, DegreeHeavyTail) {
  SbmSpec s = TestSpec();
  s.num_nodes = 2000;
  Graph g = GenerateSbm(s, 9);
  std::int64_t max_deg = 0;
  for (std::int64_t v = 0; v < g.num_nodes; ++v) {
    max_deg = std::max<std::int64_t>(max_deg, g.Degree(v));
  }
  // Degree-corrected model: hubs well above the mean.
  EXPECT_GT(max_deg, static_cast<std::int64_t>(3 * g.AverageDegree()));
}

// Hub-heavy spec where the propensity-weighted sampler frequently
// redraws an already-placed (u, v) pair. The requested budget is far
// below the number of available pairs, so the generator must be able
// to deliver it exactly.
SbmSpec DuplicateProneSpec() {
  SbmSpec s;
  s.num_nodes = 200;
  s.num_classes = 2;
  s.feature_dim = 16;
  s.informative_dims_per_class = 4;
  s.avg_degree = 16.0;
  s.homophily = 0.9;
  s.degree_exponent = 1.2;  // heavy hubs concentrate the pair distribution
  return s;
}

// Regression: duplicate (u, v) draws used to count toward the edge
// budget, so the delivered unique-edge count silently fell below
// `avg_degree * n / 2` even though the budget was feasible.
TEST(GenerateSbm, DeliversFullEdgeBudgetWhenFeasible) {
  const SbmSpec s = DuplicateProneSpec();
  const std::int64_t target = static_cast<std::int64_t>(
      std::floor(s.avg_degree * static_cast<double>(s.num_nodes) / 2.0));
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    Graph g = GenerateSbm(s, seed);
    EXPECT_EQ(g.num_edges(), target) << "seed " << seed;
  }
}

// Regression: the normalized adjacency of a duplicate-prone graph must
// match an independently computed dense D^-1/2 (A + I) D^-1/2 with a
// *binary* A — repeated samples of the same pair must not inflate any
// entry — and the graph must still carry the full requested budget.
TEST(GenerateSbm, NormalizedAdjacencyMatchesDedupedDenseReference) {
  const SbmSpec s = DuplicateProneSpec();
  Graph g = GenerateSbm(s, 11);
  const std::int64_t n = g.num_nodes;
  const std::int64_t target = static_cast<std::int64_t>(
      std::floor(s.avg_degree * static_cast<double>(n) / 2.0));
  EXPECT_EQ(g.num_edges(), target);

  // Independent reference: binary adjacency rebuilt from the edge list.
  std::vector<std::vector<double>> a(n, std::vector<double>(n, 0.0));
  for (const auto& [u, v] : UndirectedEdges(g)) {
    a[u][v] = 1.0;
    a[v][u] = 1.0;
  }
  std::vector<double> deg(n, 1.0);  // self-loop
  for (std::int64_t v = 0; v < n; ++v) {
    for (std::int64_t u = 0; u < n; ++u) deg[v] += a[v][u];
  }

  Matrix an = NormalizedAdjacency(g).ToDense();
  for (std::int64_t v = 0; v < n; ++v) {
    for (std::int64_t u = 0; u < n; ++u) {
      double want = 0.0;
      if (u == v) {
        want = 1.0 / deg[v];
      } else if (a[v][u] != 0.0) {
        want = 1.0 / std::sqrt(deg[v] * deg[u]);
      }
      ASSERT_NEAR(an(v, u), want, 1e-6) << "entry (" << v << ", " << u << ")";
    }
  }
}

// Infeasible budget: 12 nodes with homophily 1.0 admit at most C(11,2)
// = 55 intra-class pairs, below the requested 66 edges. The generator
// must surface the shortfall instead of returning silently.
SbmSpec InfeasibleSpec() {
  SbmSpec s;
  s.num_nodes = 12;
  s.num_classes = 2;
  s.feature_dim = 8;
  s.informative_dims_per_class = 2;
  s.avg_degree = 11.0;
  s.homophily = 1.0;
  return s;
}

// Regression: exhausting max_attempts used to return the under-budget
// graph with no observable signal at all.
TEST(GenerateSbm, ShortfallSurfacedThroughCounters) {
  const MetricsSnapshot before = MetricsRegistry::Get().Snapshot();
  Graph g = GenerateSbm(InfeasibleSpec(), 5);
  const MetricsSnapshot delta =
      MetricsRegistry::Get().Snapshot().DeltaFrom(before);
  EXPECT_LT(g.num_edges(), 66);
  EXPECT_EQ(delta.counter("generator.sbm.shortfall_events"), 1u);
  EXPECT_EQ(delta.counter("generator.sbm.shortfall_edges"),
            static_cast<std::uint64_t>(66 - g.num_edges()));
}

TEST(GenerateSbm, ShortfallReportPinsDeliveredEdgeCount) {
  SbmGenReport rep;
  Graph g = GenerateSbm(InfeasibleSpec(), 5, &rep);
  EXPECT_EQ(rep.target_edges, 66);
  EXPECT_EQ(rep.edges_placed, g.num_edges());
  EXPECT_FALSE(rep.budget_met);
  EXPECT_GT(rep.shortfall(), 0);
  EXPECT_EQ(rep.edges_placed + rep.shortfall(), rep.target_edges);
  EXPECT_GT(rep.duplicates_rejected, 0);
}

TEST(GenerateSbm, FeasibleBudgetReportsMet) {
  SbmGenReport rep;
  Graph g = GenerateSbm(DuplicateProneSpec(), 2, &rep);
  EXPECT_TRUE(rep.budget_met);
  EXPECT_EQ(rep.shortfall(), 0);
  EXPECT_EQ(rep.edges_placed, g.num_edges());
}

// The report overload and the legacy two-argument form must draw the
// same graph for the same seed.
TEST(GenerateSbm, ReportOverloadIsSeedCompatible) {
  SbmGenReport rep;
  Graph a = GenerateSbm(DuplicateProneSpec(), 7, &rep);
  Graph b = GenerateSbm(DuplicateProneSpec(), 7);
  EXPECT_EQ(a.col, b.col);
  EXPECT_TRUE(a.features == b.features);
}

TEST(GenerateErdosRenyi, EdgeCountNearExpectation) {
  Graph g = GenerateErdosRenyi(200, 0.05, 8, 10);
  const double expected = 0.05 * 200 * 199 / 2.0;
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected, expected * 0.3);
  EXPECT_EQ(g.feature_dim(), 8);
}

TEST(Datasets, AllSpecsLoadable) {
  for (const auto& name : NodeClassificationDatasets()) {
    DatasetSpec spec = GetDatasetSpec(name);
    EXPECT_EQ(spec.name, name);
    EXPECT_GT(spec.sbm.num_nodes, 0);
  }
}

TEST(Datasets, SmallDatasetStatsMatchPaper) {
  // Node counts follow Tab. III exactly for the five small datasets.
  EXPECT_EQ(GetDatasetSpec("cora").sbm.num_nodes, 2708);
  EXPECT_EQ(GetDatasetSpec("citeseer").sbm.num_nodes, 3327);
  EXPECT_EQ(GetDatasetSpec("photo").sbm.num_nodes, 7650);
  EXPECT_EQ(GetDatasetSpec("computers").sbm.num_nodes, 13752);
  EXPECT_EQ(GetDatasetSpec("cs").sbm.num_nodes, 18333);
  EXPECT_EQ(GetDatasetSpec("cora").sbm.num_classes, 7);
  EXPECT_EQ(GetDatasetSpec("cs").sbm.num_classes, 15);
}

TEST(Datasets, ScaledLoadShrinksNodes) {
  Graph g = LoadDatasetScaled("cora", 0.25, 11);
  EXPECT_NEAR(static_cast<double>(g.num_nodes), 2708 * 0.25, 2.0);
  EXPECT_EQ(g.num_classes, 7);
}

TEST(Datasets, UnknownNameAborts) {
  EXPECT_DEATH(GetDatasetSpec("nope"), "unknown dataset");
}

}  // namespace
}  // namespace e2gcl
