// End-to-end serving over TCP: responses fetched through the NetClient
// must be byte-identical to direct in-process EmbeddingServer calls —
// across serving configs (lazy, precompute, int8+rescore), under
// concurrent client threads, through a hot checkpoint reload with zero
// failed queries, and on both the epoll and poll(2) event-loop
// backends. Load-shedding (per-connection rate limits, the connection
// cap) must be observable through typed responses and net.* counters.
// Registered as a TSAN/ASAN target in check_sanitizers.sh.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "graph/generators.h"
#include "io/checkpoint.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "nn/gcn.h"
#include "obs/metrics.h"
#include "serve/embedding_server.h"

namespace e2gcl {
namespace net {
namespace {

Graph ServeGraph(std::uint64_t seed = 7) {
  SbmSpec spec;
  spec.num_nodes = 120;
  spec.num_classes = 3;
  spec.feature_dim = 16;
  spec.avg_degree = 6;
  spec.informative_dims_per_class = 4;
  return GenerateSbm(spec, seed);
}

GcnConfig ServeEncoderConfig(const Graph& g) {
  GcnConfig cfg;
  cfg.dims = {g.feature_dim(), 12, 8};
  return cfg;
}

/// Different seeds give different-weight checkpoints with the same
/// fingerprint — the raw material for hot-reload tests.
TrainerCheckpoint MakeCheckpoint(const Graph& g, std::uint64_t seed = 3) {
  Rng rng(seed);
  GcnEncoder encoder(ServeEncoderConfig(g), rng);
  TrainerCheckpoint ckpt;
  ckpt.epoch = 0;
  ckpt.config_fingerprint = 0xfeedULL;
  ckpt.encoder_params = encoder.params().CloneValues();
  return ckpt;
}

std::uint64_t CounterValue(const std::string& name) {
  return MetricsRegistry::Get().Snapshot().counter(name);
}

/// Serving stack builder: EmbeddingServer (per ServeOptions) fronted by
/// a NetServer on an ephemeral loopback port.
struct Stack {
  std::unique_ptr<Graph> graph;
  std::unique_ptr<EmbeddingServer> server;
  std::unique_ptr<NetServer> net;

  Stack() = default;
  Stack(Stack&&) = default;
  Stack& operator=(Stack&&) = default;

  ~Stack() {
    net.reset();  // the net front-end must die before the server
    server.reset();
  }
};

Stack MakeStack(const ServeOptions& serve_options = {},
                NetServerOptions net_options = {}) {
  Stack s;
  s.graph = std::make_unique<Graph>(ServeGraph());
  std::string error;
  s.server = EmbeddingServer::FromCheckpoint(
      *s.graph, MakeCheckpoint(*s.graph), serve_options, &error);
  EXPECT_NE(s.server, nullptr) << error;
  if (s.server == nullptr) return s;
  s.net = NetServer::Start(s.server.get(), net_options, &error);
  EXPECT_NE(s.net, nullptr) << error;
  return s;
}

std::unique_ptr<NetClient> Dial(const Stack& s) {
  std::string error;
  auto client = NetClient::Connect("127.0.0.1", s.net->port(), {}, &error);
  EXPECT_NE(client, nullptr) << error;
  return client;
}

/// Every query type through the wire vs the same server called
/// directly: rows, scores, and TopK results must match bit for bit
/// (same instance, same generation, so exact equality is the spec).
void ExpectByteIdentical(const Stack& s, bool allow_degraded = true) {
  auto client = Dial(s);
  ASSERT_NE(client, nullptr);
  ServeRequestOptions options;
  options.allow_degraded = allow_degraded;
  for (std::int64_t node = 0; node < 24; ++node) {
    const EmbeddingResponse got = client->GetEmbedding(node, options);
    const EmbeddingResponse want = s.server->GetEmbedding(node, options);
    ASSERT_EQ(got.status, ServeStatus::kOk) << client->last_error();
    ASSERT_EQ(want.status, ServeStatus::kOk);
    ASSERT_EQ(got.generation, want.generation);
    ASSERT_EQ(got.row.size(), want.row.size());
    ASSERT_EQ(std::memcmp(got.row.data(), want.row.data(),
                          got.row.size() * sizeof(float)),
              0)
        << "node " << node;
  }
  for (std::int64_t u = 0; u < 12; ++u) {
    const ScoreResponse got = client->ScoreLink(u, u + 1, options);
    const ScoreResponse want = s.server->ScoreLink(u, u + 1, options);
    ASSERT_EQ(got.status, ServeStatus::kOk) << client->last_error();
    ASSERT_EQ(std::memcmp(&got.score, &want.score, sizeof(float)), 0)
        << "edge " << u;
  }
  for (std::int64_t node = 0; node < 12; ++node) {
    const TopKResponse got = client->TopKSimilar(node, 5, options);
    const TopKResponse want = s.server->TopKSimilar(node, 5, options);
    ASSERT_TRUE(got.served()) << client->last_error();
    ASSERT_EQ(got.status, want.status);
    ASSERT_EQ(got.result.nodes, want.result.nodes) << "node " << node;
    ASSERT_EQ(got.result.scores.size(), want.result.scores.size());
    ASSERT_EQ(std::memcmp(got.result.scores.data(),
                          want.result.scores.data(),
                          got.result.scores.size() * sizeof(float)),
              0)
        << "node " << node;
  }
}

// --- Byte identity across serving configs. ---------------------------------

TEST(NetServe, ByteIdenticalLazyMode) {
  Stack s = MakeStack();
  ASSERT_NE(s.net, nullptr);
  ExpectByteIdentical(s);
}

TEST(NetServe, ByteIdenticalPrecomputeMode) {
  ServeOptions options;
  options.precompute = true;
  Stack s = MakeStack(options);
  ASSERT_NE(s.net, nullptr);
  ExpectByteIdentical(s);
}

TEST(NetServe, ByteIdenticalInt8RescoreMode) {
  ServeOptions options;
  options.precompute = true;
  options.quantize_int8 = true;
  options.rescore_factor = 4;
  Stack s = MakeStack(options);
  ASSERT_NE(s.net, nullptr);
  ExpectByteIdentical(s);
  ExpectByteIdentical(s, /*allow_degraded=*/false);
}

TEST(NetServe, ByteIdenticalOnPollBackend) {
  NetServerOptions net_options;
  net_options.force_poll = true;  // exercise the non-epoll event loop
  Stack s = MakeStack({}, net_options);
  ASSERT_NE(s.net, nullptr);
  ExpectByteIdentical(s);
}

// --- Stats over the wire. --------------------------------------------------

TEST(NetServe, StatsCarriesModelShapeAndCounters) {
  Stack s = MakeStack();
  ASSERT_NE(s.net, nullptr);
  auto client = Dial(s);
  ASSERT_NE(client, nullptr);
  StatsResponse stats;
  ASSERT_TRUE(client->Stats(&stats)) << client->last_error();
  EXPECT_EQ(stats.status, ServeStatus::kOk);
  EXPECT_NE(stats.json.find("\"num_nodes\":120"), std::string::npos)
      << stats.json;
  EXPECT_NE(stats.json.find("\"embed_dim\":8"), std::string::npos)
      << stats.json;
  EXPECT_NE(stats.json.find("\"generation\""), std::string::npos);
  EXPECT_NE(stats.json.find("net.requests"), std::string::npos);
}

// --- Concurrency. ----------------------------------------------------------

TEST(NetServe, ConcurrentClientsAllByteIdentical) {
  Stack s = MakeStack();
  ASSERT_NE(s.net, nullptr);
  constexpr int kThreads = 8;
  constexpr int kQueriesPerThread = 40;
  // Direct answers first; the server is deterministic per generation,
  // so these are the byte-exact expectations for every thread.
  std::vector<EmbeddingResponse> want_embed;
  std::vector<TopKResponse> want_topk;
  for (std::int64_t node = 0; node < 10; ++node) {
    want_embed.push_back(s.server->GetEmbedding(node, {}));
    want_topk.push_back(s.server->TopKSimilar(node, 4, {}));
  }
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto client = Dial(s);
      if (client == nullptr) {
        failures.fetch_add(1);
        return;
      }
      for (int q = 0; q < kQueriesPerThread; ++q) {
        const std::int64_t node = (t * 7 + q) % 10;
        if (q % 2 == 0) {
          const EmbeddingResponse got = client->GetEmbedding(node);
          if (got.status != ServeStatus::kOk) {
            failures.fetch_add(1);
            return;
          }
          if (got.row != want_embed[node].row) mismatches.fetch_add(1);
        } else {
          const TopKResponse got = client->TopKSimilar(node, 4);
          if (got.status != ServeStatus::kOk) {
            failures.fetch_add(1);
            return;
          }
          if (got.result.nodes != want_topk[node].result.nodes ||
              got.result.scores != want_topk[node].result.scores) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
}

// --- Load shedding, observable. --------------------------------------------

TEST(NetServe, RateLimitedRequestsGetOverloadedAndAreCounted) {
  NetServerOptions net_options;
  // Refill is ~1 token per 1000s: deterministically, exactly the burst
  // is served and everything after is shed at the socket layer.
  net_options.rate_limit_qps = 0.001;
  net_options.rate_limit_burst = 2.0;
  Stack s = MakeStack({}, net_options);
  ASSERT_NE(s.net, nullptr);
  const std::uint64_t limited_before = CounterValue("net.rate_limited");
  auto client = Dial(s);
  ASSERT_NE(client, nullptr);
  int served = 0;
  int overloaded = 0;
  for (int i = 0; i < 10; ++i) {
    const EmbeddingResponse r = client->GetEmbedding(3);
    if (r.status == ServeStatus::kOk) ++served;
    if (r.status == ServeStatus::kOverloaded) ++overloaded;
  }
  EXPECT_EQ(served, 2);
  EXPECT_EQ(overloaded, 8);
  EXPECT_EQ(CounterValue("net.rate_limited") - limited_before, 8u);
  // The rejections are per-connection: a fresh connection gets a fresh
  // bucket and is served again.
  auto fresh = Dial(s);
  ASSERT_NE(fresh, nullptr);
  EXPECT_EQ(fresh->GetEmbedding(3).status, ServeStatus::kOk);
}

TEST(NetServe, ConnectionCapRejectsWithTypedErrorFrame) {
  NetServerOptions net_options;
  net_options.max_conns = 2;
  Stack s = MakeStack({}, net_options);
  ASSERT_NE(s.net, nullptr);
  const std::uint64_t rejected_before = CounterValue("net.conn.rejected");
  auto first = Dial(s);
  auto second = Dial(s);
  ASSERT_NE(first, nullptr);
  ASSERT_NE(second, nullptr);
  // Make both connections real (accepted, not just SYN-queued).
  ASSERT_EQ(first->GetEmbedding(1).status, ServeStatus::kOk);
  ASSERT_EQ(second->GetEmbedding(1).status, ServeStatus::kOk);
  // The third connects at the TCP level (backlog) but the server
  // answers with one kConnectionLimit error frame and closes.
  auto third = Dial(s);
  ASSERT_NE(third, nullptr);
  const EmbeddingResponse r = third->GetEmbedding(1);
  EXPECT_EQ(r.status, ServeStatus::kTransportError);
  EXPECT_EQ(third->last_wire_error(), WireError::kConnectionLimit)
      << third->last_error();
  EXPECT_GE(CounterValue("net.conn.rejected") - rejected_before, 1u);
  // Capacity frees up once a connection leaves.
  first.reset();
  for (int attempt = 0; attempt < 100; ++attempt) {
    auto retry = Dial(s);
    ASSERT_NE(retry, nullptr);
    if (retry->GetEmbedding(1).status == ServeStatus::kOk) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  FAIL() << "connection slot never freed after a client disconnected";
}

// --- Hot reload under live traffic. ----------------------------------------

TEST(NetServe, HotReloadMidTrafficZeroFailedQueries) {
  Stack s = MakeStack();
  ASSERT_NE(s.net, nullptr);
  const std::uint64_t gen_before = s.server->generation();
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::atomic<int> mismatches{0};
  std::atomic<std::int64_t> queries{0};
  constexpr int kThreads = 4;
  // Expected rows for both generations, fetched directly. Generation
  // tags pair each network answer with its reference.
  std::vector<EmbeddingResponse> want_old;
  for (std::int64_t node = 0; node < 8; ++node) {
    want_old.push_back(s.server->GetEmbedding(node, {}));
    EXPECT_EQ(want_old.back().generation, gen_before);
  }
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  std::vector<std::vector<EmbeddingResponse>> seen(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto client = Dial(s);
      if (client == nullptr) {
        failures.fetch_add(1);
        return;
      }
      while (!stop.load(std::memory_order_acquire)) {
        const std::int64_t node = queries.fetch_add(1) % 8;
        const EmbeddingResponse r = client->GetEmbedding(node);
        if (r.status != ServeStatus::kOk) {
          failures.fetch_add(1);
          return;
        }
        if (r.generation == gen_before &&
            r.row != want_old[node].row) {
          mismatches.fetch_add(1);
        }
        seen[t].push_back(r);
      }
    });
  }
  // Let traffic flow, then hot-swap the model under it.
  while (queries.load() < 50) std::this_thread::yield();
  std::string error;
  const ServeStatus reload_status =
      s.server->ReloadCheckpoint(MakeCheckpoint(*s.graph, 99), &error);
  ASSERT_EQ(reload_status, ServeStatus::kOk) << error;
  while (queries.load() < 400) std::this_thread::yield();
  stop.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();

  ASSERT_EQ(failures.load(), 0) << "a query failed across the reload";
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(s.server->generation(), gen_before + 1);
  // New-generation answers must match the reloaded model, fetched
  // directly after the fact.
  std::vector<EmbeddingResponse> want_new;
  for (std::int64_t node = 0; node < 8; ++node) {
    want_new.push_back(s.server->GetEmbedding(node, {}));
    EXPECT_EQ(want_new.back().generation, gen_before + 1);
  }
  bool saw_new_generation = false;
  for (const auto& responses : seen) {
    for (std::size_t i = 0; i < responses.size(); ++i) {
      const EmbeddingResponse& r = responses[i];
      if (r.generation == gen_before) continue;
      saw_new_generation = true;
      ASSERT_EQ(r.generation, gen_before + 1);
      // Recover which node this was: rows are per-node unique enough
      // to match against the 8 references.
      bool matched = false;
      for (const EmbeddingResponse& want : want_new) {
        if (r.row == want.row) {
          matched = true;
          break;
        }
      }
      EXPECT_TRUE(matched) << "a post-reload answer matches neither "
                              "generation's reference rows";
    }
  }
  EXPECT_TRUE(saw_new_generation)
      << "reload finished before any traffic saw the new generation";
}

// --- Shutdown. -------------------------------------------------------------

TEST(NetServe, ShutdownAnswersInFlightThenRefusesNewConnections) {
  Stack s = MakeStack();
  ASSERT_NE(s.net, nullptr);
  auto client = Dial(s);
  ASSERT_NE(client, nullptr);
  ASSERT_EQ(client->GetEmbedding(2).status, ServeStatus::kOk);
  s.net->BeginShutdown();
  // A request racing shutdown gets a typed kShutdown response or a
  // clean close (if the drain finished first) — never a hang or a
  // protocol violation.
  const EmbeddingResponse r = client->GetEmbedding(2);
  EXPECT_TRUE(r.status == ServeStatus::kShutdown ||
              r.status == ServeStatus::kTransportError)
      << ServeStatusName(r.status);
  // The listener refuses new connections once the loop observes
  // shutdown (bounded wait for the 50ms poll tick).
  std::string error;
  bool refused = false;
  for (int attempt = 0; attempt < 100 && !refused; ++attempt) {
    auto late = NetClient::Connect("127.0.0.1", s.net->port(), {}, &error);
    if (late == nullptr) {
      refused = true;
      break;
    }
    // Accepted during the race window: must still be answered with a
    // typed rejection, not served.
    const EmbeddingResponse late_r = late->GetEmbedding(1);
    EXPECT_NE(late_r.status, ServeStatus::kOk);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(refused) << "listener still accepting after BeginShutdown";
  // Drained connections close on the loop's housekeeping tick; give it
  // a bounded window.
  for (int attempt = 0; attempt < 200 && s.net->num_connections() > 0;
       ++attempt) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(s.net->num_connections(), 0);
}

TEST(NetServe, DestructorDrainsWithoutHanging) {
  Stack s = MakeStack();
  ASSERT_NE(s.net, nullptr);
  auto client = Dial(s);
  ASSERT_NE(client, nullptr);
  ASSERT_EQ(client->GetEmbedding(0).status, ServeStatus::kOk);
  s.net.reset();  // joins the loop and workers; must not deadlock
  s.server.reset();
}

}  // namespace
}  // namespace net
}  // namespace e2gcl
