#include <set>

#include <gtest/gtest.h>

#include "core/scores.h"
#include "core/view_generator.h"
#include "graph/datasets.h"
#include "graph/generators.h"
#include "nn/gcn.h"
#include "test_util.h"

namespace e2gcl {
namespace {

using testing_util::SmallGraph;

Graph MediumGraph(std::uint64_t seed = 1) {
  SbmSpec spec;
  spec.num_nodes = 400;
  spec.num_classes = 4;
  spec.feature_dim = 48;
  spec.avg_degree = 8;
  spec.informative_dims_per_class = 8;
  return GenerateSbm(spec, seed);
}

// --- ImportanceScores. ------------------------------------------------------

TEST(ImportanceScores, CentralityIsLogDegree) {
  Graph g = SmallGraph();
  ImportanceScores s(g, 0.7f);
  EXPECT_NEAR(s.Centrality(2), std::log(4.0f), 1e-5f);
}

TEST(ImportanceScores, SimilarityNonNegativeOnEdges) {
  Graph g = MediumGraph();
  ImportanceScores s(g, 0.7f);
  // Sim(v,u) = c - ||x_v - x_u|| with c the max over edges, so every
  // existing edge has Sim >= 0.
  for (const auto& [u, v] : UndirectedEdges(g)) {
    EXPECT_GE(s.Similarity(u, v), -1e-5f);
  }
}

TEST(ImportanceScores, NeighborBranchPrefersInfluentialNodes) {
  Graph g = MediumGraph();
  ImportanceScores s(g, 0.7f);
  // Pick a node with both a high- and a low-degree neighbor.
  for (std::int64_t v = 0; v < g.num_nodes; ++v) {
    auto nb = g.Neighbors(v);
    if (nb.size() < 2) continue;
    std::int64_t hi = nb[0], lo = nb[0];
    for (std::int32_t u : nb) {
      if (g.Degree(u) > g.Degree(hi)) hi = u;
      if (g.Degree(u) < g.Degree(lo)) lo = u;
    }
    if (g.Degree(hi) <= g.Degree(lo) + 3) continue;
    // Control for similarity by dividing out the (normalized) sim term.
    const float c = std::max(s.sim_constant(), 1e-6f);
    const float score_hi =
        s.EdgeScore(v, hi, true) / std::exp(s.Similarity(v, hi) / c);
    const float score_lo =
        s.EdgeScore(v, lo, true) / std::exp(s.Similarity(v, lo) / c);
    EXPECT_GT(score_hi, score_lo);
    return;
  }
  GTEST_SKIP() << "no suitable node found";
}

TEST(ImportanceScores, CandidateBranchPenalizesInfluentialNodes) {
  Graph g = MediumGraph();
  ImportanceScores s(g, 0.7f);
  // For non-neighbors the centrality enters with a negative sign.
  std::int64_t hub = 0;
  for (std::int64_t v = 1; v < g.num_nodes; ++v) {
    if (g.Degree(v) > g.Degree(hub)) hub = v;
  }
  std::int64_t leaf = 0;
  for (std::int64_t v = 0; v < g.num_nodes; ++v) {
    if (g.Degree(v) > 0 && g.Degree(v) < g.Degree(leaf)) leaf = v;
  }
  const float c = std::max(s.sim_constant(), 1e-6f);
  const float hub_score =
      s.EdgeScore(1, hub, false) / std::exp(s.Similarity(1, hub) / c);
  const float leaf_score =
      s.EdgeScore(1, leaf, false) / std::exp(s.Similarity(1, leaf) / c);
  EXPECT_LT(hub_score, leaf_score);
}

TEST(ImportanceScores, PerturbProbabilityRange) {
  Graph g = MediumGraph();
  ImportanceScores s(g, 0.7f);
  for (std::int64_t v = 0; v < 50; ++v) {
    for (std::int64_t d = 0; d < g.feature_dim(); ++d) {
      const float p = s.PerturbProbability(v, d, 0.8f);
      EXPECT_GE(p, 0.0f);
      EXPECT_LE(p, ImportanceScores::kProbabilityCap);
    }
  }
  EXPECT_EQ(s.PerturbProbability(0, 0, 0.0f), 0.0f);
}

TEST(ImportanceScores, ImportantDimsPerturbedLess) {
  Graph g = MediumGraph();
  ImportanceScores s(g, 0.7f);
  // Signal dims (first num_classes*block) are globally frequent, so
  // their mean perturbation probability must be below the noise dims'.
  const std::int64_t signal_dims = 4 * 8;
  double p_signal = 0.0, p_noise = 0.0;
  std::int64_t n_signal = 0, n_noise = 0;
  for (std::int64_t v = 0; v < g.num_nodes; ++v) {
    for (std::int64_t d = 0; d < g.feature_dim(); ++d) {
      const float p = s.PerturbProbability(v, d, 0.8f);
      if (d < signal_dims) {
        p_signal += p;
        ++n_signal;
      } else {
        p_noise += p;
        ++n_noise;
      }
    }
  }
  EXPECT_LT(p_signal / n_signal, p_noise / n_noise);
}

// --- ViewGenerator: global views. -------------------------------------------

TEST(GlobalView, PreservesNodeCountAndFiniteFeatures) {
  Graph g = MediumGraph();
  ViewGenerator gen(g);
  Rng rng(2);
  Graph view = gen.GenerateGlobalView({.tau = 0.8f, .eta = 0.4f}, rng);
  EXPECT_EQ(view.num_nodes, g.num_nodes);
  EXPECT_TRUE(AllFinite(view.features));
  EXPECT_GT(view.num_edges(), 0);
}

TEST(GlobalView, TauControlsEdgeBudget) {
  Graph g = MediumGraph();
  ViewGenerator gen(g);
  Rng rng(3);
  Graph sparse = gen.GenerateGlobalView({.tau = 0.3f, .eta = 0.0f}, rng);
  Graph dense = gen.GenerateGlobalView({.tau = 1.2f, .eta = 0.0f}, rng);
  EXPECT_LT(sparse.num_edges(), dense.num_edges());
  EXPECT_LT(sparse.num_edges(), g.num_edges());
}

TEST(GlobalView, TauZeroGivesNoEdges) {
  Graph g = MediumGraph();
  ViewGenerator gen(g);
  Rng rng(4);
  Graph view = gen.GenerateGlobalView({.tau = 0.0f, .eta = 0.0f}, rng);
  EXPECT_EQ(view.num_edges(), 0);
}

TEST(GlobalView, EtaZeroKeepsFeatures) {
  Graph g = MediumGraph();
  ViewGenerator gen(g);
  Rng rng(5);
  Graph view = gen.GenerateGlobalView({.tau = 0.8f, .eta = 0.0f}, rng);
  EXPECT_TRUE(view.features == g.features);
}

TEST(GlobalView, Eq16PerturbationBounded) {
  // Eq. 16 is multiplicative in [-1, 1], so every perturbed value stays
  // within [0, 2|x|] of the original sign region.
  Graph g = MediumGraph();
  ViewGenerator gen(g);
  Rng rng(6);
  Graph view = gen.GenerateGlobalView({.tau = 1.0f, .eta = 0.9f}, rng);
  for (std::int64_t i = 0; i < g.features.size(); ++i) {
    const float orig = g.features.data()[i];
    const float pert = view.features.data()[i];
    EXPECT_GE(pert, -1e-6f);
    EXPECT_LE(pert, 2.0f * orig + 1e-6f);
  }
}

TEST(GlobalView, TwoDrawsDiffer) {
  Graph g = MediumGraph();
  ViewGenerator gen(g);
  Rng rng(7);
  ViewConfig cfg{.tau = 0.8f, .eta = 0.4f};
  Graph v1 = gen.GenerateGlobalView(cfg, rng);
  Graph v2 = gen.GenerateGlobalView(cfg, rng);
  EXPECT_FALSE(v1.col == v2.col && v1.features == v2.features);
}

TEST(GlobalView, EdgeAdditionDisabledKeepsSubsetOfOriginalEdges) {
  Graph g = MediumGraph();
  ViewGenerator gen(g);
  Rng rng(8);
  ViewConfig cfg{.tau = 0.9f, .eta = 0.0f};
  cfg.allow_edge_addition = false;
  Graph view = gen.GenerateGlobalView(cfg, rng);
  for (const auto& [u, v] : UndirectedEdges(view)) {
    EXPECT_TRUE(g.HasEdge(u, v));
  }
}

TEST(GlobalView, EdgeDeletionDisabledKeepsAllOriginalEdges) {
  Graph g = MediumGraph();
  ViewGenerator gen(g);
  Rng rng(9);
  ViewConfig cfg{.tau = 1.2f, .eta = 0.0f};
  cfg.allow_edge_deletion = false;
  Graph view = gen.GenerateGlobalView(cfg, rng);
  for (const auto& [u, v] : UndirectedEdges(g)) {
    EXPECT_TRUE(view.HasEdge(u, v));
  }
  EXPECT_GE(view.num_edges(), g.num_edges());
}

TEST(GlobalView, FeaturePerturbationDisabled) {
  Graph g = MediumGraph();
  ViewGenerator gen(g);
  Rng rng(10);
  ViewConfig cfg{.tau = 0.8f, .eta = 0.9f};
  cfg.allow_feature_perturbation = false;
  Graph view = gen.GenerateGlobalView(cfg, rng);
  EXPECT_TRUE(view.features == g.features);
}

// --- Per-node views (the literal Alg. 3). -----------------------------------

TEST(PerNodeView, ContainsRootAndIsLocal) {
  Graph g = MediumGraph();
  ViewGenerator gen(g);
  Rng rng(11);
  std::int64_t root_idx = -1;
  std::vector<std::int64_t> nodes;
  Graph view = gen.GeneratePerNodeView(5, 2, {.tau = 0.8f, .eta = 0.3f},
                                       rng, &root_idx, &nodes);
  ASSERT_GE(root_idx, 0);
  EXPECT_LT(root_idx, view.num_nodes);
  EXPECT_EQ(nodes[root_idx], 5);
  // All nodes within 2 hops of some sampled path: view is small
  // relative to the graph.
  EXPECT_LT(view.num_nodes, g.num_nodes);
}

TEST(PerNodeView, SubgraphNodesAreOriginalIds) {
  Graph g = MediumGraph();
  ViewGenerator gen(g);
  Rng rng(12);
  std::int64_t root_idx = -1;
  std::vector<std::int64_t> nodes;
  gen.GeneratePerNodeView(7, 2, {.tau = 0.6f, .eta = 0.0f}, rng, &root_idx,
                          &nodes);
  for (std::int64_t v : nodes) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, g.num_nodes);
  }
  std::set<std::int64_t> uniq(nodes.begin(), nodes.end());
  EXPECT_EQ(uniq.size(), nodes.size());
}

TEST(PerNodeView, IsolatedRootYieldsSingleton) {
  Graph g = BuildGraph(3, {{0, 1}}, Matrix(3, 4, 0.5f));
  ViewGenerator gen(g);
  Rng rng(13);
  std::int64_t root_idx = -1;
  Graph view =
      gen.GeneratePerNodeView(2, 2, {.tau = 0.8f, .eta = 0.0f}, rng,
                              &root_idx);
  EXPECT_EQ(view.num_nodes, 1);
  EXPECT_EQ(root_idx, 0);
}

// --- View quality (Eq. 15): importance-aware beats uniform. -----------------

TEST(ViewQuality, ImportanceAwarePreservesLocalityBetterThanUniform) {
  Graph g = MediumGraph(21);
  ViewGenerator gen(g);
  Rng rng_model(22);
  GcnConfig cfg;
  cfg.dims = {g.feature_dim(), 32, 16};
  GcnEncoder enc(cfg, rng_model);

  std::vector<std::int64_t> probe_nodes;
  for (std::int64_t v = 0; v < g.num_nodes; v += 4) probe_nodes.push_back(v);

  auto quality_of = [&](bool importance, std::uint64_t seed) {
    ViewConfig vc{.tau = 0.7f, .eta = 0.5f};
    vc.importance_edges = importance;
    vc.importance_features = importance;
    Rng rng(seed);
    Graph hat = gen.GenerateGlobalView(vc, rng);
    Graph tilde = gen.GenerateGlobalView(vc, rng);
    return EvaluateViewQuality(enc, g, hat, tilde, probe_nodes);
  };

  double imp_locality = 0.0, uni_locality = 0.0;
  for (std::uint64_t s = 0; s < 3; ++s) {
    ViewQuality qi = quality_of(true, 100 + s);
    ViewQuality qu = quality_of(false, 200 + s);
    imp_locality += qi.locality_hat + qi.locality_tilde;
    uni_locality += qu.locality_hat + qu.locality_tilde;
  }
  EXPECT_LT(imp_locality, uni_locality);
}

TEST(ViewQuality, DiversityPositiveForDistinctViews) {
  Graph g = MediumGraph(23);
  ViewGenerator gen(g);
  Rng rng_model(24);
  GcnConfig cfg;
  cfg.dims = {g.feature_dim(), 16};
  GcnEncoder enc(cfg, rng_model);
  Rng rng(25);
  Graph hat = gen.GenerateGlobalView({.tau = 0.9f, .eta = 0.3f}, rng);
  Graph tilde = gen.GenerateGlobalView({.tau = 0.6f, .eta = 0.6f}, rng);
  ViewQuality q = EvaluateViewQuality(enc, g, hat, tilde, {0, 1, 2, 3, 4});
  EXPECT_GT(q.diversity, 0.0);
}

}  // namespace
}  // namespace e2gcl
