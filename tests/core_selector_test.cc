#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "core/node_selector.h"
#include "core/raw_aggregation.h"
#include "graph/generators.h"
#include "test_util.h"

namespace e2gcl {
namespace {

using testing_util::SmallGraph;

TEST(RawAggregation, ZeroLayersIsIdentityOnFeatures) {
  Graph g = SmallGraph();
  Matrix r = RawAggregation(g, 0);
  EXPECT_LT(MaxAbsDiff(r, g.features), 1e-7f);
}

TEST(RawAggregation, MatchesDenseMatrixPower) {
  Graph g = SmallGraph();
  Matrix an = NormalizedAdjacency(g).ToDense();
  Matrix expected = MatMul(an, MatMul(an, g.features));
  EXPECT_LT(MaxAbsDiff(RawAggregation(g, 2), expected), 1e-5f);
}

TEST(RawAggregation, SmoothsTowardNeighbors) {
  // After aggregation, same-class nodes (connected triangle) are closer
  // than before relative to cross-class pairs.
  Graph g = SmallGraph();
  Matrix r = RawAggregation(g, 2);
  const float same = RowDistance(r, 0, r, 1);
  const float cross = RowDistance(r, 0, r, 4);
  EXPECT_LT(same, cross);
}

SelectorConfig TestConfig(std::int64_t budget) {
  SelectorConfig cfg;
  cfg.budget = budget;
  cfg.num_clusters = 8;
  cfg.sample_size = 64;
  cfg.auto_sample_size = false;
  return cfg;
}

TEST(SelectCoreset, BudgetRespectedAndDistinct) {
  Graph g = GenerateSbm({.num_nodes = 300, .num_classes = 4,
                         .feature_dim = 40, .avg_degree = 8},
                        1);
  Matrix r = RawAggregation(g, 2);
  Rng rng(2);
  SelectionResult res = SelectCoreset(r, TestConfig(30), rng);
  EXPECT_EQ(res.nodes.size(), 30u);
  std::set<std::int64_t> uniq(res.nodes.begin(), res.nodes.end());
  EXPECT_EQ(uniq.size(), 30u);
}

TEST(SelectCoreset, WeightsSumToNodeCount) {
  Graph g = GenerateSbm({.num_nodes = 250, .num_classes = 3,
                         .feature_dim = 32, .avg_degree = 6},
                        3);
  Matrix r = RawAggregation(g, 2);
  Rng rng(4);
  SelectionResult res = SelectCoreset(r, TestConfig(25), rng);
  double total = 0.0;
  for (float w : res.weights) total += w;
  EXPECT_NEAR(total, 250.0, 1e-3);
  for (float w : res.weights) EXPECT_GE(w, 0.0f);
}

TEST(SelectCoreset, FullBudgetSelectsEveryone) {
  Graph g = GenerateSbm({.num_nodes = 60, .num_classes = 3,
                         .feature_dim = 16, .avg_degree = 5,
                         .informative_dims_per_class = 4},
                        5);
  Matrix r = RawAggregation(g, 2);
  Rng rng(6);
  SelectionResult res = SelectCoreset(r, TestConfig(60), rng);
  EXPECT_EQ(res.nodes.size(), 60u);
}

TEST(SelectCoreset, ObjectiveDecreasesWithBudget) {
  Graph g = GenerateSbm({.num_nodes = 400, .num_classes = 4,
                         .feature_dim = 32, .avg_degree = 8},
                        7);
  Matrix r = RawAggregation(g, 2);
  Rng rng_a(8), rng_b(8);
  const double small =
      SelectCoreset(r, TestConfig(10), rng_a).representativity;
  const double large =
      SelectCoreset(r, TestConfig(120), rng_b).representativity;
  EXPECT_LT(large, small);
}

TEST(SelectCoreset, BeatsRandomOnObjective) {
  Graph g = GenerateSbm({.num_nodes = 400, .num_classes = 5,
                         .feature_dim = 40, .avg_degree = 8},
                        9);
  Matrix r = RawAggregation(g, 2);
  Rng rng(10);
  KMeansOptions km_opts;
  km_opts.num_clusters = 8;
  Rng km_rng(11);
  KMeansResult km = KMeans(r, km_opts, km_rng);

  SelectorConfig cfg = TestConfig(40);
  Rng sel_rng(12);
  SelectionResult greedy = SelectCoreset(r, cfg, sel_rng);
  const double greedy_obj = RepresentativityObjective(r, km, greedy.nodes);

  double random_obj = 0.0;
  const int trials = 5;
  for (int t = 0; t < trials; ++t) {
    auto random_nodes = rng.SampleWithoutReplacement(400, 40);
    random_obj += RepresentativityObjective(r, km, random_nodes);
  }
  random_obj /= trials;
  EXPECT_LT(greedy_obj, random_obj);
}

TEST(SelectCoreset, CoversAllClasses) {
  // Cluster-based selection should hit every class even with class
  // imbalance (the stated motivation for Eq. 13).
  SbmSpec spec;
  spec.num_nodes = 500;
  spec.num_classes = 5;
  spec.feature_dim = 50;
  spec.avg_degree = 8;
  spec.class_skew = 0.8;
  Graph g = GenerateSbm(spec, 13);
  Matrix r = RawAggregation(g, 2);
  Rng rng(14);
  SelectorConfig cfg = TestConfig(50);
  cfg.num_clusters = 10;
  SelectionResult res = SelectCoreset(r, cfg, rng);
  std::set<std::int64_t> classes;
  for (std::int64_t v : res.nodes) classes.insert(g.labels[v]);
  EXPECT_EQ(classes.size(), 5u);
}

TEST(SelectCoreset, AutoSampleSizeStillWorks) {
  Graph g = GenerateSbm({.num_nodes = 300, .num_classes = 3,
                         .feature_dim = 24, .avg_degree = 6},
                        15);
  Matrix r = RawAggregation(g, 2);
  Rng rng(16);
  SelectorConfig cfg;
  cfg.budget = 120;
  cfg.num_clusters = 8;
  cfg.auto_sample_size = true;
  SelectionResult res = SelectCoreset(r, cfg, rng);
  EXPECT_EQ(res.nodes.size(), 120u);
  EXPECT_GT(res.seconds, 0.0);
}

TEST(SelectCoreset, DeterministicGivenSeed) {
  Graph g = GenerateSbm({.num_nodes = 200, .num_classes = 3,
                         .feature_dim = 24, .avg_degree = 6},
                        17);
  Matrix r = RawAggregation(g, 2);
  Rng a(18), b(18);
  EXPECT_EQ(SelectCoreset(r, TestConfig(20), a).nodes,
            SelectCoreset(r, TestConfig(20), b).nodes);
}

// --- Theorem 1 empirical check. -------------------------------------------
// For the linearized GCN (H = A_n^L X theta) and the Eq. 5 loss without
// negatives, the gradient difference between nodes is bounded by
// c * ||R[v] - R[u]|| + 4*eps*c', with R = A_n^L X. We verify the
// qualitative claim: gradient distance correlates with R distance and
// the bound holds with the paper's constants.
TEST(Theorem1, GradientDifferenceBoundedByRawAggregationDistance) {
  Graph g = GenerateSbm({.num_nodes = 80, .num_classes = 3,
                         .feature_dim = 12, .avg_degree = 5,
                         .informative_dims_per_class = 3},
                        19);
  const int L = 2;
  Matrix r_full = RawAggregation(g, L);

  Rng rng(20);
  const std::int64_t d_out = 6;
  Matrix theta = Matrix::RandomNormal(12, d_out, 0.0f, 0.5f, rng);
  float theta_norm = FrobeniusNorm(theta);

  // Perturbed views: tiny feature noise so that ||r_hat - r|| <= eps.
  Matrix x_hat = g.features;
  Matrix x_tilde = g.features;
  for (std::int64_t i = 0; i < x_hat.size(); ++i) {
    x_hat.data()[i] += 0.01f * rng.Normal();
    x_tilde.data()[i] += 0.01f * rng.Normal();
  }
  CsrMatrix an = NormalizedAdjacency(g);
  Matrix r_hat = RawAggregation(an, x_hat, L);
  Matrix r_tilde = RawAggregation(an, x_tilde, L);

  float eps = 0.0f;
  for (std::int64_t v = 0; v < g.num_nodes; ++v) {
    eps = std::max(eps, RowDistance(r_hat, v, r_full, v));
    eps = std::max(eps, RowDistance(r_tilde, v, r_full, v));
  }

  // grad_v = (r_hat_v - r_tilde_v)^T (r_hat_v - r_tilde_v) theta
  // (Theorem 1's derivative of ||h_hat - h_tilde||^2 wrt theta).
  auto grad_of = [&](std::int64_t v) {
    Matrix diff(1, r_full.cols());
    for (std::int64_t c = 0; c < r_full.cols(); ++c) {
      diff(0, c) = r_hat(v, c) - r_tilde(v, c);
    }
    return MatMul(MatMulTransposedA(diff, diff), theta);
  };

  for (std::int64_t v = 0; v < 20; ++v) {
    for (std::int64_t u = 20; u < 40; ++u) {
      const float grad_diff = FrobeniusNorm(Sub(grad_of(v), grad_of(u)));
      const float bound =
          8.0f * eps * theta_norm * (RowDistance(r_full, v, r_full, u) +
                                     4.0f * eps);
      EXPECT_LE(grad_diff, bound * 1.05f)  // small float slack
          << "pair (" << v << ", " << u << ")";
    }
  }
}

}  // namespace
}  // namespace e2gcl
