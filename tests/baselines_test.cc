#include <set>

#include <gtest/gtest.h>

#include "baselines/bgrl.h"
#include "baselines/deepwalk.h"
#include "baselines/dgi.h"
#include "baselines/gae.h"
#include "baselines/grace.h"
#include "baselines/mvgrl.h"
#include "baselines/selectors.h"
#include "baselines/supervised.h"
#include "core/raw_aggregation.h"
#include "graph/generators.h"
#include "graph/splits.h"
#include "test_util.h"

namespace e2gcl {
namespace {


Graph TestGraph(std::uint64_t seed = 1) {
  SbmSpec spec;
  spec.num_nodes = 250;
  spec.num_classes = 3;
  spec.feature_dim = 30;
  spec.avg_degree = 8;
  return GenerateSbm(spec, seed);
}

// --- Selector baselines (Table VII machinery). ------------------------------

TEST(Selectors, AllKindsRespectBudget) {
  Graph g = TestGraph();
  Matrix r = RawAggregation(g, 2);
  SelectorConfig cfg;
  cfg.num_clusters = 8;
  cfg.sample_size = 32;
  cfg.auto_sample_size = false;
  for (const auto kind :
       {SelectorKind::kRandom, SelectorKind::kDegree, SelectorKind::kKMeans,
        SelectorKind::kKCenterGreedy, SelectorKind::kGrain,
        SelectorKind::kE2gcl}) {
    Rng rng(7);
    SelectionResult res = SelectNodes(kind, g, r, 40, cfg, rng);
    EXPECT_LE(res.nodes.size(), 40u) << SelectorKindName(kind);
    EXPECT_GE(res.nodes.size(), 30u) << SelectorKindName(kind);
    std::set<std::int64_t> uniq(res.nodes.begin(), res.nodes.end());
    EXPECT_EQ(uniq.size(), res.nodes.size()) << SelectorKindName(kind);
    double wsum = 0.0;
    for (float w : res.weights) wsum += w;
    EXPECT_NEAR(wsum, static_cast<double>(g.num_nodes), g.num_nodes * 0.01)
        << SelectorKindName(kind);
  }
}

TEST(Selectors, NamesRoundTrip) {
  for (const auto kind :
       {SelectorKind::kRandom, SelectorKind::kDegree, SelectorKind::kKMeans,
        SelectorKind::kKCenterGreedy, SelectorKind::kGrain,
        SelectorKind::kE2gcl}) {
    EXPECT_EQ(SelectorKindFromName(SelectorKindName(kind)), kind);
  }
  EXPECT_DEATH(SelectorKindFromName("bogus"), "unknown selector");
}

TEST(Selectors, DegreeSelectorPrefersHubs) {
  Graph g = TestGraph(3);
  Matrix r = RawAggregation(g, 2);
  SelectorConfig cfg;
  Rng rng(4);
  SelectionResult deg = SelectNodes(SelectorKind::kDegree, g, r, 50, cfg, rng);
  Rng rng2(5);
  SelectionResult rnd =
      SelectNodes(SelectorKind::kRandom, g, r, 50, cfg, rng2);
  auto mean_degree = [&](const std::vector<std::int64_t>& nodes) {
    double acc = 0.0;
    for (std::int64_t v : nodes) acc += g.Degree(v);
    return acc / nodes.size();
  };
  EXPECT_GT(mean_degree(deg.nodes), mean_degree(rnd.nodes));
}

TEST(Selectors, KCenterGreedyCoversSpace) {
  Graph g = TestGraph(6);
  Matrix r = RawAggregation(g, 2);
  SelectorConfig cfg;
  Rng rng(7);
  SelectionResult kcg =
      SelectNodes(SelectorKind::kKCenterGreedy, g, r, 30, cfg, rng);
  // Farthest-point traversal: max distance of any node to the selected
  // set must be below the diameter and selection must be spread out.
  EXPECT_GE(kcg.nodes.size(), 25u);
}

// --- GCL baselines. ----------------------------------------------------------

TEST(Grace, TrainsAndEmbeds) {
  Graph g = TestGraph();
  GraceConfig cfg;
  cfg.epochs = 6;
  cfg.hidden_dim = 24;
  cfg.embed_dim = 16;
  cfg.batch_size = 100;
  GraceTrainer trainer(g, cfg);
  trainer.Train();
  Matrix emb = trainer.encoder().Encode(g);
  EXPECT_EQ(emb.rows(), g.num_nodes);
  EXPECT_TRUE(AllFinite(emb));
  EXPECT_EQ(trainer.stats().epochs_run, 6);
}

TEST(Grace, ViewDropsEdgesAtRequestedRate) {
  Graph g = TestGraph();
  GraceConfig cfg;
  GraceTrainer trainer(g, cfg);
  Rng rng(8);
  Graph view = trainer.SampleView(0.4f, 0.0f, rng);
  const double kept_ratio =
      static_cast<double>(view.num_edges()) / g.num_edges();
  EXPECT_NEAR(kept_ratio, 0.6, 0.08);
  EXPECT_TRUE(view.features == g.features);
}

TEST(Grace, FeatureMaskZeroesWholeDims) {
  Graph g = TestGraph();
  GraceConfig cfg;
  GraceTrainer trainer(g, cfg);
  Rng rng(9);
  Graph view = trainer.SampleView(0.0f, 0.5f, rng);
  std::int64_t zero_dims = 0;
  for (std::int64_t d = 0; d < g.feature_dim(); ++d) {
    bool all_zero = true;
    for (std::int64_t v = 0; v < g.num_nodes && all_zero; ++v) {
      if (view.features(v, d) != 0.0f) all_zero = false;
    }
    if (all_zero) ++zero_dims;
  }
  EXPECT_GT(zero_dims, g.feature_dim() / 4);
}

TEST(Grace, AdaptiveGcaVariantRuns) {
  Graph g = TestGraph();
  GraceConfig cfg;
  cfg.adaptive = true;
  cfg.epochs = 4;
  GraceTrainer trainer(g, cfg);
  trainer.Train();
  EXPECT_TRUE(AllFinite(trainer.encoder().Encode(g)));
}

TEST(Grace, OperationUpgradesRun) {
  Graph g = TestGraph();
  GraceConfig cfg;
  cfg.epochs = 3;
  cfg.add_edge_ratio = 0.15f;
  cfg.feature_perturb_eta = 0.3f;
  GraceTrainer trainer(g, cfg);
  Rng rng(10);
  Graph view = trainer.SampleView(0.2f, 0.2f, rng);
  EXPECT_TRUE(AllFinite(view.features));
  trainer.Train();
  EXPECT_TRUE(AllFinite(trainer.encoder().Encode(g)));
}

TEST(Dgi, TrainsAndEmbeds) {
  Graph g = TestGraph();
  DgiConfig cfg;
  cfg.epochs = 6;
  cfg.hidden_dim = 24;
  cfg.embed_dim = 16;
  DgiTrainer trainer(g, cfg);
  trainer.Train();
  Matrix emb = trainer.encoder().Encode(g);
  EXPECT_TRUE(AllFinite(emb));
  EXPECT_EQ(emb.cols(), 16);
}

TEST(Bgrl, TrainsAndEmbeds) {
  Graph g = TestGraph();
  BgrlConfig cfg;
  cfg.epochs = 6;
  cfg.hidden_dim = 24;
  cfg.embed_dim = 16;
  cfg.batch_size = 100;
  BgrlTrainer trainer(g, cfg);
  trainer.Train();
  EXPECT_TRUE(AllFinite(trainer.encoder().Encode(g)));
}

TEST(Bgrl, AfgrlVariantRuns) {
  Graph g = TestGraph();
  BgrlConfig cfg;
  cfg.augmentation_free = true;
  cfg.epochs = 5;
  BgrlTrainer trainer(g, cfg);
  trainer.Train();
  EXPECT_TRUE(AllFinite(trainer.encoder().Encode(g)));
}

TEST(Mvgrl, DiffusionViewDiffersAndTrains) {
  Graph g = TestGraph();
  MvgrlConfig cfg;
  cfg.epochs = 5;
  cfg.hidden_dim = 24;
  cfg.embed_dim = 16;
  MvgrlTrainer trainer(g, cfg);
  EXPECT_NE(trainer.diffusion_view().num_edges(), 0);
  trainer.Train();
  Matrix emb = trainer.Embed();
  EXPECT_EQ(emb.rows(), g.num_nodes);
  EXPECT_TRUE(AllFinite(emb));
}

TEST(Gae, PlainAndVariationalTrain) {
  Graph g = TestGraph();
  for (const bool variational : {false, true}) {
    GaeConfig cfg;
    cfg.variational = variational;
    cfg.epochs = 6;
    GaeTrainer trainer(g, cfg);
    trainer.Train();
    EXPECT_TRUE(AllFinite(trainer.Embed())) << "variational=" << variational;
  }
}

TEST(Gae, ReconstructionScoresEdgesAboveNonEdges) {
  Graph g = TestGraph(11);
  GaeConfig cfg;
  cfg.epochs = 60;
  GaeTrainer trainer(g, cfg);
  trainer.Train();
  Matrix z = trainer.Embed();
  Rng rng(12);
  double edge_score = 0.0, non_edge_score = 0.0;
  auto edges = UndirectedEdges(g);
  const int probes = 200;
  for (int i = 0; i < probes; ++i) {
    const auto& [u, v] = edges[rng.UniformInt(edges.size())];
    for (std::int64_t c = 0; c < z.cols(); ++c) {
      edge_score += z(u, c) * z(v, c);
    }
    std::int64_t a = rng.UniformInt(g.num_nodes);
    std::int64_t b = rng.UniformInt(g.num_nodes);
    if (a == b || g.HasEdge(a, b)) {
      --i;
      continue;
    }
    for (std::int64_t c = 0; c < z.cols(); ++c) {
      non_edge_score += z(a, c) * z(b, c);
    }
  }
  EXPECT_GT(edge_score, non_edge_score);
}

TEST(DeepWalk, EmbedsAllNodes) {
  Graph g = TestGraph();
  DeepWalkConfig cfg;
  cfg.epochs = 1;
  cfg.walks_per_node = 4;
  cfg.walk_length = 10;
  Matrix emb = TrainDeepWalk(g, cfg);
  EXPECT_EQ(emb.rows(), g.num_nodes);
  EXPECT_EQ(emb.cols(), 64);
  EXPECT_TRUE(AllFinite(emb));
}

TEST(DeepWalk, NeighborsCloserThanRandomPairs) {
  Graph g = TestGraph(13);
  DeepWalkConfig cfg;
  cfg.epochs = 2;
  Matrix emb = NormalizeRowsL2(TrainDeepWalk(g, cfg));
  Rng rng(14);
  auto edges = UndirectedEdges(g);
  double edge_sim = 0.0, rand_sim = 0.0;
  const int probes = 300;
  for (int i = 0; i < probes; ++i) {
    const auto& [u, v] = edges[rng.UniformInt(edges.size())];
    for (std::int64_t c = 0; c < emb.cols(); ++c) {
      edge_sim += emb(u, c) * emb(v, c);
    }
    const std::int64_t a = rng.UniformInt(g.num_nodes);
    const std::int64_t b = rng.UniformInt(g.num_nodes);
    for (std::int64_t c = 0; c < emb.cols(); ++c) {
      rand_sim += emb(a, c) * emb(b, c);
    }
  }
  EXPECT_GT(edge_sim, rand_sim);
}

TEST(DeepWalk, Node2VecBiasesRun) {
  Graph g = TestGraph();
  DeepWalkConfig cfg;
  cfg.epochs = 1;
  cfg.p = 0.5f;
  cfg.q = 2.0f;
  EXPECT_TRUE(AllFinite(TrainDeepWalk(g, cfg)));
}

TEST(Supervised, GcnBeatsChance) {
  Graph g = TestGraph(15);
  Rng rng(16);
  NodeSplit split = RandomNodeSplit(g.num_nodes, 0.1, 0.1, rng);
  SupervisedConfig cfg;
  cfg.epochs = 60;
  const double acc = TrainSupervisedGcn(g, split, cfg);
  EXPECT_GT(acc, 1.0 / 3.0 + 0.1);
}

TEST(Supervised, MlpRunsAboveChance) {
  Graph g = TestGraph(17);
  Rng rng(18);
  NodeSplit split = RandomNodeSplit(g.num_nodes, 0.2, 0.1, rng);
  SupervisedConfig cfg;
  cfg.epochs = 60;
  const double acc = TrainSupervisedMlp(g, split, cfg);
  EXPECT_GT(acc, 1.0 / 3.0);
}

}  // namespace
}  // namespace e2gcl
