#include "autograd/ops.h"

#include <memory>

#include <gtest/gtest.h>

#include "tensor/csr.h"
#include "test_util.h"

namespace e2gcl {
namespace {

using testing_util::CheckGradients;

Matrix RandM(std::int64_t r, std::int64_t c, std::uint64_t seed) {
  Rng rng(seed);
  return Matrix::RandomNormal(r, c, 0.0f, 1.0f, rng);
}

TEST(AutogradBasics, ConstantHasNoGrad) {
  Var c = Var::Constant(RandM(2, 2, 1));
  EXPECT_FALSE(c.requires_grad());
  Var p = Var::Param(RandM(2, 2, 2));
  EXPECT_TRUE(p.requires_grad());
}

TEST(AutogradBasics, BackwardAccumulatesThroughSharedNode) {
  // loss = sum(p + p): dL/dp = 2 everywhere.
  Var p = Var::Param(RandM(2, 3, 3));
  Var loss = ag::SumAll(ag::Add(p, p));
  loss.Backward();
  for (std::int64_t i = 0; i < p.grad().size(); ++i) {
    EXPECT_FLOAT_EQ(p.grad().data()[i], 2.0f);
  }
}

TEST(AutogradBasics, ZeroGradClears) {
  Var p = Var::Param(RandM(2, 2, 4));
  ag::SumAll(p).Backward();
  EXPECT_FALSE(p.grad().empty());
  p.ZeroGrad();
  EXPECT_TRUE(p.grad().empty());
}

TEST(AutogradBasics, GradientDoesNotFlowIntoConstants) {
  Var p = Var::Param(RandM(2, 2, 5));
  Var c = Var::Constant(RandM(2, 2, 6));
  Var loss = ag::SumAll(ag::Hadamard(p, c));
  loss.Backward();
  EXPECT_TRUE(c.grad().empty());
  EXPECT_FALSE(p.grad().empty());
}

TEST(GradCheck, MatMul) {
  CheckGradients({RandM(3, 4, 10), RandM(4, 2, 11)},
                 [](const std::vector<Var>& p) {
                   return ag::SumAll(ag::MatMul(p[0], p[1]));
                 });
}

TEST(GradCheck, MatMulChained) {
  CheckGradients({RandM(2, 3, 12), RandM(3, 3, 13), RandM(3, 2, 14)},
                 [](const std::vector<Var>& p) {
                   return ag::SumAll(
                       ag::MatMul(ag::MatMul(p[0], p[1]), p[2]));
                 });
}

TEST(GradCheck, MatMulTransposedB) {
  CheckGradients({RandM(3, 4, 15), RandM(5, 4, 16)},
                 [](const std::vector<Var>& p) {
                   return ag::SumAll(ag::MatMulTransposedB(p[0], p[1]));
                 });
}

TEST(GradCheck, Spmm) {
  auto s = std::make_shared<const CsrMatrix>(CsrMatrix::FromCoo(
      3, 3, {{0, 1, 2.0f}, {1, 0, -1.0f}, {2, 2, 0.5f}, {0, 2, 1.0f}}));
  CheckGradients({RandM(3, 4, 17)}, [s](const std::vector<Var>& p) {
    return ag::SumAll(ag::Spmm(s, p[0]));
  });
}

TEST(GradCheck, AddSubHadamardScale) {
  CheckGradients({RandM(3, 3, 18), RandM(3, 3, 19)},
                 [](const std::vector<Var>& p) {
                   Var mixed = ag::Sub(ag::Add(p[0], p[1]),
                                       ag::Scale(ag::Hadamard(p[0], p[1]),
                                                 0.3f));
                   return ag::SumAll(ag::Hadamard(mixed, mixed));
                 });
}

TEST(GradCheck, AddRowBroadcast) {
  CheckGradients({RandM(4, 3, 20), RandM(1, 3, 21)},
                 [](const std::vector<Var>& p) {
                   Var y = ag::AddRowBroadcast(p[0], p[1]);
                   return ag::SumAll(ag::Hadamard(y, y));
                 });
}

TEST(GradCheck, Relu) {
  // Keep inputs away from the kink for finite differences.
  Matrix x = RandM(4, 4, 22);
  for (std::int64_t i = 0; i < x.size(); ++i) {
    if (std::fabs(x.data()[i]) < 0.05f) x.data()[i] = 0.2f;
  }
  CheckGradients({x}, [](const std::vector<Var>& p) {
    return ag::SumAll(ag::Hadamard(ag::Relu(p[0]), ag::Relu(p[0])));
  });
}

TEST(GradCheck, PRelu) {
  Matrix x = RandM(4, 4, 23);
  for (std::int64_t i = 0; i < x.size(); ++i) {
    if (std::fabs(x.data()[i]) < 0.05f) x.data()[i] = -0.2f;
  }
  Matrix slope(1, 1);
  slope(0, 0) = 0.3f;
  CheckGradients({x, slope}, [](const std::vector<Var>& p) {
    Var y = ag::PRelu(p[0], p[1]);
    return ag::SumAll(ag::Hadamard(y, y));
  });
}

TEST(GradCheck, SigmoidTanhExp) {
  CheckGradients({RandM(3, 3, 24)}, [](const std::vector<Var>& p) {
    Var y = ag::Sigmoid(p[0]);
    Var z = ag::Tanh(p[0]);
    Var w = ag::Exp(ag::Scale(p[0], 0.5f));
    return ag::SumAll(ag::Add(ag::Hadamard(y, z), w));
  });
}

TEST(GradCheck, Log) {
  Rng rng(25);
  Matrix x = Matrix::RandomUniform(3, 3, 0.5f, 2.0f, rng);
  CheckGradients({x}, [](const std::vector<Var>& p) {
    return ag::SumAll(ag::Log(p[0]));
  });
}

TEST(GradCheck, NormalizeRowsL2) {
  CheckGradients({RandM(4, 5, 26)}, [](const std::vector<Var>& p) {
    Var n = ag::NormalizeRowsL2(p[0]);
    // Weighted sum so the gradient is row-dependent.
    Rng rng(27);
    Var w = Var::Constant(Matrix::RandomNormal(4, 5, 0, 1, rng));
    return ag::SumAll(ag::Hadamard(n, w));
  });
}

TEST(NormalizeRowsL2, ForwardUnitNorm) {
  Var x = Var::Param(RandM(6, 8, 28));
  Var n = ag::NormalizeRowsL2(x);
  Matrix norms = RowL2Norms(n.value());
  for (std::int64_t r = 0; r < norms.rows(); ++r) {
    EXPECT_NEAR(norms(r, 0), 1.0f, 1e-5f);
  }
}

TEST(GradCheck, Transpose) {
  CheckGradients({RandM(3, 5, 29)}, [](const std::vector<Var>& p) {
    Var t = ag::Transpose(p[0]);
    return ag::SumAll(ag::Hadamard(t, t));
  });
}

TEST(GradCheck, MeanAllAndMeanRows) {
  CheckGradients({RandM(4, 3, 30)}, [](const std::vector<Var>& p) {
    Var m = ag::MeanRows(p[0]);
    return ag::Add(ag::MeanAll(ag::Hadamard(p[0], p[0])),
                   ag::SumAll(ag::Hadamard(m, m)));
  });
}

TEST(GradCheck, GatherRows) {
  CheckGradients({RandM(5, 3, 31)}, [](const std::vector<Var>& p) {
    Var g = ag::GatherRows(p[0], {0, 2, 2, 4});
    return ag::SumAll(ag::Hadamard(g, g));
  });
}

TEST(GatherRows, ForwardSelectsRows) {
  Var x = Var::Param(Matrix::FromRows({{1, 2}, {3, 4}, {5, 6}}));
  Var g = ag::GatherRows(x, {2, 0});
  EXPECT_FLOAT_EQ(g.value()(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(g.value()(1, 1), 2.0f);
}

TEST(Dropout, IdentityWhenNotTraining) {
  Rng rng(33);
  Var x = Var::Param(RandM(4, 4, 32));
  Var y = ag::Dropout(x, 0.5f, rng, /*training=*/false);
  EXPECT_LT(MaxAbsDiff(y.value(), x.value()), 1e-7f);
}

TEST(Dropout, MaskAndScaleConsistentInBackward) {
  Rng rng(34);
  Var x = Var::Param(Matrix(1, 1000, 1.0f));
  Var y = ag::Dropout(x, 0.25f, rng, /*training=*/true);
  // Kept entries scaled by 1/(1-p).
  std::int64_t kept = 0;
  for (std::int64_t i = 0; i < y.value().size(); ++i) {
    const float v = y.value().data()[i];
    EXPECT_TRUE(v == 0.0f || std::fabs(v - 1.0f / 0.75f) < 1e-5f);
    if (v != 0.0f) ++kept;
  }
  EXPECT_NEAR(static_cast<double>(kept), 750.0, 60.0);
  ag::SumAll(y).Backward();
  for (std::int64_t i = 0; i < x.grad().size(); ++i) {
    const float g = x.grad().data()[i];
    const float v = y.value().data()[i];
    EXPECT_FLOAT_EQ(g, v == 0.0f ? 0.0f : 1.0f / 0.75f);
  }
}

TEST(GradCheck, BatchNormColumns) {
  Matrix x = RandM(6, 4, 40);
  Matrix gamma(1, 4, 1.0f);
  Matrix beta(1, 4);
  CheckGradients({x, gamma, beta},
                 [](const std::vector<Var>& p) {
                   Var y = ag::BatchNormColumns(p[0], p[1], p[2]);
                   Rng rng(41);
                   Var w = Var::Constant(Matrix::RandomNormal(6, 4, 0, 1, rng));
                   return ag::SumAll(ag::Hadamard(y, w));
                 },
                 /*h=*/1e-2f, /*tol=*/4e-2f);
}

TEST(BatchNormColumns, NormalizesColumns) {
  Rng rng(42);
  Var x = Var::Param(Matrix::RandomNormal(50, 3, 5.0f, 2.0f, rng));
  Var gamma = Var::Param(Matrix(1, 3, 1.0f));
  Var beta = Var::Param(Matrix(1, 3));
  Var y = ag::BatchNormColumns(x, gamma, beta);
  Matrix cs = ColSums(y.value());
  for (std::int64_t j = 0; j < 3; ++j) {
    EXPECT_NEAR(cs(0, j) / 50.0f, 0.0f, 1e-4f);
  }
  // Unit variance per column.
  for (std::int64_t j = 0; j < 3; ++j) {
    double v = 0.0;
    for (std::int64_t i = 0; i < 50; ++i) {
      v += y.value()(i, j) * y.value()(i, j);
    }
    EXPECT_NEAR(v / 50.0, 1.0, 1e-3);
  }
}

TEST(Backward, DiamondGraphAccumulates) {
  // loss = sum(relu(p) + sigmoid(p)) exercises two paths to p.
  Matrix x = RandM(3, 3, 35);
  for (std::int64_t i = 0; i < x.size(); ++i) {
    if (std::fabs(x.data()[i]) < 0.05f) x.data()[i] = 0.3f;
  }
  CheckGradients({x}, [](const std::vector<Var>& p) {
    return ag::SumAll(ag::Add(ag::Relu(p[0]), ag::Sigmoid(p[0])));
  });
}

}  // namespace
}  // namespace e2gcl
