#include <cmath>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "eval/linear_probe.h"
#include "eval/metrics.h"
#include "eval/protocol.h"
#include "obs/metrics.h"
#include "graph/generators.h"
#include "test_util.h"

namespace e2gcl {
namespace {

TEST(Accuracy, ExactMatch) {
  EXPECT_DOUBLE_EQ(Accuracy({1, 2, 3}, {1, 2, 3}), 1.0);
  EXPECT_DOUBLE_EQ(Accuracy({1, 0, 3}, {1, 2, 3}), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(Accuracy({}, {}), 0.0);
}

TEST(ArgmaxRows, PicksLargest) {
  Matrix s = Matrix::FromRows({{0.1f, 0.9f}, {5.0f, -1.0f}});
  EXPECT_EQ(ArgmaxRows(s), (std::vector<std::int64_t>{1, 0}));
}

TEST(RocAuc, PerfectSeparation) {
  EXPECT_DOUBLE_EQ(RocAuc({0.9f, 0.8f}, {0.1f, 0.2f}), 1.0);
  EXPECT_DOUBLE_EQ(RocAuc({0.1f, 0.2f}, {0.9f, 0.8f}), 0.0);
}

TEST(RocAuc, RandomScoresNearHalf) {
  Rng rng(1);
  std::vector<float> pos, neg;
  for (int i = 0; i < 2000; ++i) {
    pos.push_back(rng.Uniform());
    neg.push_back(rng.Uniform());
  }
  EXPECT_NEAR(RocAuc(pos, neg), 0.5, 0.03);
}

TEST(RocAuc, TiesCountHalf) {
  // All scores identical -> AUC = 0.5 exactly.
  EXPECT_DOUBLE_EQ(RocAuc({0.5f, 0.5f}, {0.5f, 0.5f}), 0.5);
}

TEST(ComputeMeanStd, KnownValues) {
  MeanStd ms = ComputeMeanStd({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(ms.mean, 2.5);
  EXPECT_NEAR(ms.std, std::sqrt(5.0 / 3.0), 1e-9);
  MeanStd single = ComputeMeanStd({7.0});
  EXPECT_DOUBLE_EQ(single.mean, 7.0);
  EXPECT_DOUBLE_EQ(single.std, 0.0);
}

TEST(LinearProbe, SeparableEmbeddingsReachHighAccuracy) {
  // Embeddings = one-hot class codes + noise: probe must ace it.
  Rng rng(2);
  const std::int64_t n = 300;
  Matrix emb(n, 8);
  std::vector<std::int64_t> labels(n);
  for (std::int64_t v = 0; v < n; ++v) {
    labels[v] = v % 3;
    emb(v, labels[v]) = 1.0f;
    for (std::int64_t c = 0; c < 8; ++c) emb(v, c) += 0.05f * rng.Normal();
  }
  NodeSplit split = RandomNodeSplit(n, 0.1, 0.1, rng);
  const double acc = LinearProbeAccuracy(emb, labels, 3, split);
  EXPECT_GT(acc, 0.95);
}

TEST(LinearProbe, RandomEmbeddingsNearChance) {
  Rng rng(3);
  const std::int64_t n = 300;
  Matrix emb = Matrix::RandomNormal(n, 8, 0, 1, rng);
  std::vector<std::int64_t> labels(n);
  for (std::int64_t v = 0; v < n; ++v) labels[v] = rng.UniformInt(3);
  NodeSplit split = RandomNodeSplit(n, 0.1, 0.1, rng);
  const double acc = LinearProbeAccuracy(emb, labels, 3, split);
  EXPECT_LT(acc, 0.55);
}

TEST(LinkProbe, SeparablePairsReachHighAuc) {
  // Positive pairs share a latent direction; negatives are random.
  Rng rng(4);
  const std::int64_t n = 200;
  Matrix emb(n, 8);
  for (std::int64_t v = 0; v < n; ++v) {
    const std::int64_t group = v % 4;
    emb(v, group) = 1.0f;
    for (std::int64_t c = 0; c < 8; ++c) emb(v, c) += 0.05f * rng.Normal();
  }
  auto make_pairs = [&](bool positive, int count) {
    std::vector<std::pair<std::int64_t, std::int64_t>> out;
    while (static_cast<int>(out.size()) < count) {
      std::int64_t u = rng.UniformInt(n), v = rng.UniformInt(n);
      if (u == v) continue;
      const bool same = (u % 4) == (v % 4);
      if (same == positive) out.emplace_back(u, v);
    }
    return out;
  };
  const auto train_pos = make_pairs(true, 200);
  const auto train_neg = make_pairs(false, 200);
  const auto val_pos = make_pairs(true, 50);
  const auto val_neg = make_pairs(false, 50);
  const auto test_pos = make_pairs(true, 100);
  const auto test_neg = make_pairs(false, 100);
  const double auc = LinkProbeAuc(emb, train_pos, train_neg, val_pos,
                                  val_neg, test_pos, test_neg);
  EXPECT_GT(auc, 0.9);
}

TEST(Protocol, ModelNamesRoundTrip) {
  for (ModelKind kind : Table4Models()) {
    std::string name = ModelKindName(kind);
    for (char& c : name) c = std::tolower(c);
    // Table IV prints DW/N2V abbreviations, accepted by the parser.
    EXPECT_EQ(ModelKindFromName(name == "dw" ? "deepwalk"
                                : name == "n2v" ? "node2vec"
                                                : name),
              kind);
  }
  EXPECT_DEATH(ModelKindFromName("nope"), "unknown model");
}

TEST(Protocol, Table4HasThirteenModels) {
  EXPECT_EQ(Table4Models().size(), 13u);
}

TEST(Protocol, EndToEndRunOnTinyGraph) {
  SbmSpec spec;
  spec.num_nodes = 150;
  spec.num_classes = 3;
  spec.feature_dim = 24;
  spec.avg_degree = 6;
  Graph g = GenerateSbm(spec, 5);
  RunConfig cfg;
  cfg.epochs = 5;
  cfg.e2gcl.hidden_dim = 16;
  cfg.e2gcl.embed_dim = 16;
  cfg.e2gcl.batch_size = 64;
  cfg.e2gcl.selector.num_clusters = 6;
  cfg.e2gcl.selector.sample_size = 24;
  cfg.probe.epochs = 40;
  RunResult res = RunNodeClassification(ModelKind::kE2gcl, g, cfg);
  EXPECT_GT(res.accuracy, 0.0);
  EXPECT_LE(res.accuracy, 1.0);
  EXPECT_GT(res.total_seconds, 0.0);
  EXPECT_GT(res.selection_seconds, 0.0);
}

TEST(Protocol, SupervisedRunHasNoSelectionTime) {
  SbmSpec spec;
  spec.num_nodes = 120;
  spec.num_classes = 3;
  spec.feature_dim = 16;
  spec.informative_dims_per_class = 4;
  spec.avg_degree = 6;
  Graph g = GenerateSbm(spec, 6);
  RunConfig cfg;
  cfg.supervised.epochs = 10;
  RunResult res = RunNodeClassification(ModelKind::kGcn, g, cfg);
  EXPECT_EQ(res.selection_seconds, 0.0);
  EXPECT_GT(res.accuracy, 0.0);
}

TEST(Protocol, RunRepeatedAggregates) {
  SbmSpec spec;
  spec.num_nodes = 120;
  spec.num_classes = 3;
  spec.feature_dim = 16;
  spec.informative_dims_per_class = 4;
  spec.avg_degree = 6;
  Graph g = GenerateSbm(spec, 7);
  RunConfig cfg;
  cfg.epochs = 3;
  cfg.probe.epochs = 30;
  AggregateResult agg = RunRepeated(ModelKind::kGrace, g, cfg, 2);
  EXPECT_GT(agg.accuracy.mean, 0.0);
  EXPECT_LE(agg.accuracy.mean, 100.0);
  EXPECT_GE(agg.accuracy.std, 0.0);
}


// Satellite regression: with an empty validation split the probe used to
// score val = 1.0, silently re-selecting the LAST epoch's model and
// burning one test-AUC evaluation per probe epoch. Now it trains for the
// full budget and evaluates the final model exactly once — pinned down
// via the eval.rocauc.calls counter.
TEST(LinkProbe, EmptyValidationEvaluatesFinalModelExactlyOnce) {
  Rng rng(9);
  const std::int64_t n = 40;
  Matrix emb = Matrix::RandomNormal(n, 6, 0, 1, rng);
  auto pairs = [&](int count) {
    std::vector<std::pair<std::int64_t, std::int64_t>> out;
    while (static_cast<int>(out.size()) < count) {
      std::int64_t u = rng.UniformInt(n), v = rng.UniformInt(n);
      if (u != v) out.emplace_back(u, v);
    }
    return out;
  };
  LinearProbeConfig cfg;
  cfg.epochs = 12;  // probe epochs 4, 9, 11 would each call RocAuc twice
  SetObsEnabled(true);
  MetricsRegistry::Get().ResetValuesForTest();
  const double auc = LinkProbeAuc(emb, pairs(30), pairs(30), {}, {},
                                  pairs(20), pairs(20), cfg);
  EXPECT_GE(auc, 0.0);
  EXPECT_LE(auc, 1.0);
  const MetricsSnapshot snap = MetricsRegistry::Get().Snapshot();
  EXPECT_EQ(snap.counter("eval.rocauc.calls"), 1u);
}

TEST(LinkProbeDeathTest, RejectsEmptyNegativesAndLopsidedValidation) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  Rng rng(9);
  Matrix emb = Matrix::RandomNormal(10, 4, 0, 1, rng);
  const std::vector<std::pair<std::int64_t, std::int64_t>> some = {
      {0, 1}, {2, 3}};
  const std::vector<std::pair<std::int64_t, std::int64_t>> none;
  // Empty negative sets used to slip straight into RocAuc (or worse,
  // train a probe on positives only); now they fail loudly up front.
  EXPECT_DEATH(LinkProbeAuc(emb, some, none, some, some, some, some),
               "train_neg");
  EXPECT_DEATH(LinkProbeAuc(emb, some, some, some, some, some, none),
               "test_neg");
  // A half-empty validation split is a caller bug, not "no validation".
  EXPECT_DEATH(LinkProbeAuc(emb, some, some, some, none, some, some),
               "both empty or both");
}

}  // namespace
}  // namespace e2gcl
