#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/ppr.h"
#include "graph/splits.h"
#include "graph/tu_generator.h"
#include "test_util.h"

namespace e2gcl {
namespace {

using testing_util::SmallGraph;

TEST(RandomNodeSplit, FractionsRespectedAndDisjoint) {
  Rng rng(1);
  NodeSplit s = RandomNodeSplit(1000, 0.1, 0.1, rng);
  EXPECT_EQ(s.train.size(), 100u);
  EXPECT_EQ(s.val.size(), 100u);
  EXPECT_EQ(s.test.size(), 800u);
  std::set<std::int64_t> all;
  for (const auto* part : {&s.train, &s.val, &s.test}) {
    for (std::int64_t v : *part) all.insert(v);
  }
  EXPECT_EQ(all.size(), 1000u);
}

TEST(RandomNodeSplit, DifferentRngsGiveDifferentSplits) {
  Rng a(1), b(2);
  NodeSplit sa = RandomNodeSplit(500, 0.2, 0.2, a);
  NodeSplit sb = RandomNodeSplit(500, 0.2, 0.2, b);
  EXPECT_NE(sa.train, sb.train);
}

TEST(RandomEdgeSplit, PartitionsEdges) {
  Graph g = GenerateErdosRenyi(120, 0.08, 4, 3);
  Rng rng(4);
  EdgeSplit s = RandomEdgeSplit(g, 0.7, 0.1, rng);
  EXPECT_EQ(static_cast<std::int64_t>(s.train_pos.size() +
                                      s.val_pos.size() + s.test_pos.size()),
            g.num_edges());
  // Train graph only has train edges.
  EXPECT_EQ(s.train_graph.num_edges(),
            static_cast<std::int64_t>(s.train_pos.size()));
  for (const auto& [u, v] : s.train_pos) {
    EXPECT_TRUE(s.train_graph.HasEdge(u, v));
  }
  for (const auto& [u, v] : s.test_pos) {
    EXPECT_FALSE(s.train_graph.HasEdge(u, v));
  }
}

TEST(RandomEdgeSplit, NegativesAreNonEdges) {
  Graph g = GenerateErdosRenyi(100, 0.1, 4, 5);
  Rng rng(6);
  EdgeSplit s = RandomEdgeSplit(g, 0.7, 0.1, rng);
  for (const auto* neg : {&s.train_neg, &s.val_neg, &s.test_neg}) {
    for (const auto& [u, v] : *neg) {
      EXPECT_FALSE(g.HasEdge(u, v));
      EXPECT_NE(u, v);
    }
  }
  EXPECT_GT(s.test_neg.size(), s.test_pos.size() / 2);
}

TEST(Ppr, RowsAreProbabilityLike) {
  Graph g = SmallGraph();
  PprOptions opts;
  opts.top_k = 0;
  CsrMatrix ppr = ApproximatePpr(g, opts);
  Matrix d = ppr.ToDense();
  for (std::int64_t r = 0; r < d.rows(); ++r) {
    float sum = 0.0f;
    for (std::int64_t c = 0; c < d.cols(); ++c) {
      EXPECT_GE(d(r, c), 0.0f);
      sum += d(r, c);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-4f);
  }
}

TEST(Ppr, SelfMassLargest) {
  Graph g = SmallGraph();
  PprOptions opts;
  opts.alpha = 0.3;
  opts.top_k = 0;
  Matrix d = ApproximatePpr(g, opts).ToDense();
  for (std::int64_t v = 0; v < g.num_nodes; ++v) {
    for (std::int64_t u = 0; u < g.num_nodes; ++u) {
      if (u != v) {
        EXPECT_GE(d(v, v), d(v, u));
      }
    }
  }
}

TEST(Ppr, LocalityDecay) {
  // A path graph: mass at distance 1 exceeds mass at distance 3.
  Graph g = BuildGraph(6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}});
  PprOptions opts;
  opts.top_k = 0;
  opts.epsilon = 1e-6;
  Matrix d = ApproximatePpr(g, opts).ToDense();
  EXPECT_GT(d(0, 1), d(0, 3));
  EXPECT_GT(d(0, 2), d(0, 4));
}

TEST(Ppr, TopKSparsifies) {
  Graph g = GenerateErdosRenyi(60, 0.2, 0, 7);
  PprOptions opts;
  opts.top_k = 5;
  CsrMatrix ppr = ApproximatePpr(g, opts);
  for (std::int64_t v = 0; v < ppr.rows(); ++v) {
    EXPECT_LE(ppr.RowNnz(v), 5);
  }
}

TEST(DiffusionGraph, AddsLongRangeEdges) {
  // Path graph diffusion should connect nodes beyond 1 hop.
  Graph g = BuildGraph(8, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6},
                           {6, 7}});
  PprOptions opts;
  opts.top_k = 4;
  Graph diff = DiffusionGraph(g, opts);
  EXPECT_EQ(diff.num_nodes, g.num_nodes);
  bool has_two_hop = false;
  for (const auto& [u, v] : UndirectedEdges(diff)) {
    if (std::abs(u - v) >= 2) has_two_hop = true;
  }
  EXPECT_TRUE(has_two_hop);
}

TEST(TuGenerator, DeterministicAndSized) {
  TuSpec spec;
  spec.num_graphs = 30;
  spec.num_classes = 2;
  TuDataset a = GenerateTuDataset(spec, 5);
  TuDataset b = GenerateTuDataset(spec, 5);
  EXPECT_EQ(a.graphs.size(), 30u);
  EXPECT_EQ(a.graph_labels, b.graph_labels);
  EXPECT_EQ(a.graphs[7].col, b.graphs[7].col);
}

TEST(TuGenerator, GraphsWithinNodeBounds) {
  TuSpec spec;
  spec.num_graphs = 40;
  spec.min_nodes = 10;
  spec.max_nodes = 25;
  TuDataset ds = GenerateTuDataset(spec, 6);
  for (const Graph& g : ds.graphs) {
    EXPECT_GE(g.num_nodes, 10);
    // Motif packing can overshoot by at most one motif (size <= 7).
    EXPECT_LE(g.num_nodes, 25 + 7);
    EXPECT_GT(g.num_edges(), 0);
    EXPECT_EQ(g.feature_dim(), spec.feature_dim);
  }
}

TEST(TuGenerator, LabelsBalanced) {
  TuSpec spec;
  spec.num_graphs = 40;
  spec.num_classes = 2;
  TuDataset ds = GenerateTuDataset(spec, 7);
  std::int64_t ones = 0;
  for (std::int64_t y : ds.graph_labels) ones += y;
  EXPECT_EQ(ones, 20);
}

TEST(TuGenerator, NamedSpecsExist) {
  for (const auto& name : GraphClassificationDatasets()) {
    TuSpec spec = GetTuSpec(name);
    EXPECT_EQ(spec.name, name);
    EXPECT_GT(spec.num_graphs, 0);
  }
  EXPECT_DEATH(GetTuSpec("bogus"), "unknown TU dataset");
}

}  // namespace
}  // namespace e2gcl
