// Kernel layer parity: the dispatched simd:: backend against the
// always-compiled simd::portable:: reference, on awkward shapes (0, 1,
// 7, 33, non-multiple-of-8 columns) and at 1/2/7 threads. In a
// portable build the two are the same code, so every comparison is
// exact; in an AVX2 build fp32 reductions may differ in the last ulps
// (FMA contraction, lane-wise accumulation) and are compared with a
// tight relative tolerance, while the contracts that hold bit-exactly
// in EVERY backend — SpmmRows == Axpy-per-edge, the GemmRows zero-skip,
// integer kernels, thread-count invariance of the routed Matrix ops —
// are always EXPECT_EQ.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "parallel/thread_pool.h"
#include "tensor/csr.h"
#include "tensor/matrix.h"
#include "tensor/rng.h"
#include "tensor/simd/simd.h"

namespace e2gcl {
namespace {

// Shapes that stress every vector-tail path: empty, scalar-only, below
// one lane (7), one lane + tail (9..15), 32-tile + 8-tile + tail (33,
// 41), and a multiple-of-8-but-not-32 width (48).
constexpr std::int64_t kLengths[] = {0, 1, 7, 8, 9, 15, 31, 32, 33, 41, 48};
constexpr int kThreadCounts[] = {1, 2, 7};

bool IsPortableBuild() {
  return std::string(simd::BackendName()) == "portable";
}

std::vector<float> RandomVec(std::int64_t n, Rng& rng) {
  std::vector<float> v(static_cast<std::size_t>(n));
  for (float& x : v) x = rng.Uniform(-2.0f, 2.0f);
  return v;
}

/// Exact in a portable build; tight relative tolerance under AVX2.
void ExpectScalarParity(float got, float want) {
  if (IsPortableBuild()) {
    EXPECT_EQ(got, want);
  } else {
    const float tol = 1e-5f * std::max(1.0f, std::fabs(want));
    EXPECT_NEAR(got, want, tol);
  }
}

void ExpectVectorParity(const std::vector<float>& got,
                        const std::vector<float>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (IsPortableBuild()) {
      EXPECT_EQ(got[i], want[i]) << "index " << i;
    } else {
      const float tol = 1e-5f * std::max(1.0f, std::fabs(want[i]));
      EXPECT_NEAR(got[i], want[i], tol) << "index " << i;
    }
  }
}

TEST(SimdParity, DotMatchesPortableOnAwkwardLengths) {
  Rng rng(1);
  for (std::int64_t n : kLengths) {
    const std::vector<float> a = RandomVec(n, rng);
    const std::vector<float> b = RandomVec(n, rng);
    ExpectScalarParity(simd::Dot(a.data(), b.data(), n),
                       simd::portable::Dot(a.data(), b.data(), n));
  }
}

TEST(SimdParity, SquaredDistanceMatchesPortable) {
  Rng rng(2);
  for (std::int64_t n : kLengths) {
    const std::vector<float> a = RandomVec(n, rng);
    const std::vector<float> b = RandomVec(n, rng);
    ExpectScalarParity(
        simd::SquaredDistance(a.data(), b.data(), n),
        simd::portable::SquaredDistance(a.data(), b.data(), n));
  }
}

TEST(SimdParity, DoubleReductionsMatchPortable) {
  Rng rng(3);
  for (std::int64_t n : kLengths) {
    const std::vector<float> a = RandomVec(n, rng);
    const double norm = simd::SquaredNormD(a.data(), n);
    const double norm_ref = simd::portable::SquaredNormD(a.data(), n);
    const double sum = simd::SumD(a.data(), n);
    const double sum_ref = simd::portable::SumD(a.data(), n);
    if (IsPortableBuild()) {
      EXPECT_EQ(norm, norm_ref);
      EXPECT_EQ(sum, sum_ref);
    } else {
      EXPECT_NEAR(norm, norm_ref, 1e-10 * std::max(1.0, std::fabs(norm_ref)));
      EXPECT_NEAR(sum, sum_ref, 1e-10 * std::max(1.0, std::fabs(sum_ref)));
    }
  }
}

TEST(SimdParity, AxpyAndScaleMatchPortable) {
  Rng rng(4);
  for (std::int64_t n : kLengths) {
    const std::vector<float> x = RandomVec(n, rng);
    std::vector<float> y = RandomVec(n, rng);
    std::vector<float> y_ref = y;
    simd::Axpy(y.data(), 0.37f, x.data(), n);
    simd::portable::Axpy(y_ref.data(), 0.37f, x.data(), n);
    ExpectVectorParity(y, y_ref);
    // Scale is a bare multiply per element: exact in every backend.
    std::vector<float> s = x;
    std::vector<float> s_ref = x;
    simd::Scale(s.data(), -1.5f, n);
    simd::portable::Scale(s_ref.data(), -1.5f, n);
    EXPECT_EQ(s, s_ref) << "n=" << n;
  }
}

TEST(SimdParity, NormalizeRowL2MatchesPortableAndHandlesZeroRows) {
  Rng rng(5);
  for (std::int64_t n : kLengths) {
    const std::vector<float> src = RandomVec(n, rng);
    std::vector<float> dst(static_cast<std::size_t>(n), -9.0f);
    std::vector<float> dst_ref(static_cast<std::size_t>(n), -9.0f);
    simd::NormalizeRowL2(dst.data(), src.data(), n, 1e-12f);
    simd::portable::NormalizeRowL2(dst_ref.data(), src.data(), n, 1e-12f);
    ExpectVectorParity(dst, dst_ref);
    // A zero row is copied unchanged, never divided.
    const std::vector<float> zeros(static_cast<std::size_t>(n), 0.0f);
    std::vector<float> out(static_cast<std::size_t>(n), -9.0f);
    simd::NormalizeRowL2(out.data(), zeros.data(), n, 1e-12f);
    EXPECT_EQ(out, zeros) << "n=" << n;
  }
}

TEST(SimdParity, GemmRowsMatchesPortableOnAwkwardShapes) {
  Rng rng(6);
  for (std::int64_t k : {1L, 7L, 33L}) {
    for (std::int64_t n : kLengths) {
      const std::int64_t m = 3;
      const std::vector<float> a = RandomVec(m * k, rng);
      const std::vector<float> b = RandomVec(k * n, rng);
      std::vector<float> c(static_cast<std::size_t>(m * n), 0.0f);
      std::vector<float> c_ref = c;
      simd::GemmRows(a.data(), b.data(), c.data(), 0, m, k, n);
      simd::portable::GemmRows(a.data(), b.data(), c_ref.data(), 0, m, k, n);
      ExpectVectorParity(c, c_ref);

      // Gram matrix b * b^T: a (k x k) output with inner width n, so the
      // dot-form kernel sees every tail length too.
      std::vector<float> t(static_cast<std::size_t>(k * k), 0.0f);
      std::vector<float> t_ref = t;
      simd::GemmTransBRows(b.data(), b.data(), t.data(), 0, k, n, k);
      simd::portable::GemmTransBRows(b.data(), b.data(), t_ref.data(), 0, k,
                                     n, k);
      ExpectVectorParity(t, t_ref);
    }
  }
}

TEST(SimdContract, GemmRowsZeroSkipMasksNaN) {
  // a[0][0] == 0 against b rows holding NaN: the zero-skip contract says
  // the product contributes nothing (0 * NaN never evaluated), in every
  // backend. This is what AllFinite's documentation relies on.
  const std::int64_t k = 2, n = 11;
  std::vector<float> a = {0.0f, 2.0f};
  std::vector<float> b(static_cast<std::size_t>(k * n), 1.0f);
  for (std::int64_t j = 0; j < n; ++j) {
    b[static_cast<std::size_t>(j)] = std::numeric_limits<float>::quiet_NaN();
  }
  std::vector<float> c(static_cast<std::size_t>(n), 0.0f);
  simd::GemmRows(a.data(), b.data(), c.data(), 0, 1, k, n);
  for (std::int64_t j = 0; j < n; ++j) {
    EXPECT_EQ(c[static_cast<std::size_t>(j)], 2.0f) << "col " << j;
  }
}

TEST(SimdContract, SpmmRowsIsBitIdenticalToAxpyPerEdge) {
  // The serving bit-identity contract: the blocked SpmmRows kernel must
  // produce exactly what one Axpy call per edge produces, in every
  // backend and for every tail shape — GcnEncoder::EncodeRows replays
  // subsets with Axpy and must match the full-graph Spmm bit for bit.
  Rng rng(7);
  for (std::int64_t n : kLengths) {
    const std::int64_t rows = 5, cols = 6;
    std::vector<std::tuple<std::int64_t, std::int64_t, float>> coo;
    for (std::int64_t r = 0; r < rows; ++r) {
      for (std::int64_t c = 0; c < cols; ++c) {
        if (rng.Uniform(0.0f, 1.0f) < 0.6f) {
          coo.emplace_back(r, c, rng.Uniform(-1.0f, 1.0f));
        }
      }
    }
    const CsrMatrix csr = CsrMatrix::FromCoo(rows, cols, coo);
    const std::vector<float> dense = RandomVec(cols * n, rng);
    std::vector<float> via_kernel(static_cast<std::size_t>(rows * n), 0.0f);
    simd::SpmmRows(csr.row_ptr().data(), csr.col_idx().data(),
                   csr.values().data(), dense.data(), via_kernel.data(), 0,
                   rows, n);
    std::vector<float> via_axpy(static_cast<std::size_t>(rows * n), 0.0f);
    for (std::int64_t r = 0; r < rows; ++r) {
      for (std::int64_t e = csr.row_ptr()[r]; e < csr.row_ptr()[r + 1]; ++e) {
        simd::Axpy(via_axpy.data() + r * n, csr.values()[e],
                   dense.data() + static_cast<std::int64_t>(
                                      csr.col_idx()[e]) * n,
                   n);
      }
    }
    EXPECT_EQ(via_kernel, via_axpy) << "n=" << n;
  }
}

TEST(SimdContract, DotI8IsExactAcrossBackends) {
  Rng rng(8);
  for (std::int64_t n : kLengths) {
    std::vector<std::int8_t> a(static_cast<std::size_t>(n));
    std::vector<std::int8_t> b(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) {
      a[static_cast<std::size_t>(i)] =
          static_cast<std::int8_t>(rng.UniformInt(255) - 127);
      b[static_cast<std::size_t>(i)] =
          static_cast<std::int8_t>(rng.UniformInt(255) - 127);
    }
    EXPECT_EQ(simd::DotI8(a.data(), b.data(), n),
              simd::portable::DotI8(a.data(), b.data(), n))
        << "n=" << n;
  }
  // Extremes: +/-127 codes at a length that exercises vector + tail.
  std::vector<std::int8_t> lo(33, std::int8_t{-127});
  std::vector<std::int8_t> hi(33, std::int8_t{127});
  EXPECT_EQ(simd::DotI8(lo.data(), hi.data(), 33), -127 * 127 * 33);
}

TEST(SimdContract, QuantizeRowI8RoundTripsAndClampsSymmetrically) {
  const std::vector<float> row = {-1.0f, -0.5f, 0.0f, 0.25f, 1.0f};
  std::vector<std::int8_t> codes(row.size());
  const float scale = simd::QuantizeRowI8(
      codes.data(), row.data(), static_cast<std::int64_t>(row.size()));
  EXPECT_FLOAT_EQ(scale, 1.0f / 127.0f);
  EXPECT_EQ(codes[0], -127);  // maxabs maps to the symmetric extreme
  EXPECT_EQ(codes[2], 0);
  EXPECT_EQ(codes[4], 127);
  // All-zero rows quantize to scale 0 / all-zero codes (no 0/0).
  const std::vector<float> zeros(9, 0.0f);
  std::vector<std::int8_t> zcodes(zeros.size(), std::int8_t{5});
  EXPECT_EQ(simd::QuantizeRowI8(zcodes.data(), zeros.data(), 9), 0.0f);
  for (std::int8_t c : zcodes) EXPECT_EQ(c, 0);
}

TEST(SimdThreads, RoutedMatrixKernelsAreThreadCountInvariant) {
  // The Matrix/Csr entry points that now route through the kernel layer
  // must stay bit-identical at any thread count (DESIGN.md "Threading
  // model") — including at awkward widths.
  Rng rng(9);
  for (std::int64_t n : {7L, 33L, 48L}) {
    const Matrix a = Matrix::RandomUniform(65, 19, -1.0f, 1.0f, rng);
    const Matrix b = Matrix::RandomUniform(19, n, -1.0f, 1.0f, rng);
    std::vector<std::tuple<std::int64_t, std::int64_t, float>> coo;
    for (std::int64_t r = 0; r < 40; ++r) {
      for (std::int64_t c = 0; c < 65; ++c) {
        if (rng.Uniform(0.0f, 1.0f) < 0.15f) {
          coo.emplace_back(r, c, rng.Uniform(-1.0f, 1.0f));
        }
      }
    }
    const CsrMatrix adj = CsrMatrix::FromCoo(40, 65, coo);

    SetNumThreads(1);
    const Matrix mm = MatMul(a, b);
    const Matrix mtb = MatMulTransposedB(a, a);
    const Matrix sp = Spmm(adj, Add(a, a));
    const Matrix nrm = NormalizeRowsL2(mm);
    const float fro = FrobeniusNorm(mm);
    for (int threads : kThreadCounts) {
      SetNumThreads(threads);
      EXPECT_TRUE(MatMul(a, b) == mm) << "threads=" << threads << " n=" << n;
      EXPECT_TRUE(MatMulTransposedB(a, a) == mtb)
          << "threads=" << threads << " n=" << n;
      EXPECT_TRUE(Spmm(adj, Add(a, a)) == sp)
          << "threads=" << threads << " n=" << n;
      EXPECT_TRUE(NormalizeRowsL2(mm) == nrm)
          << "threads=" << threads << " n=" << n;
      EXPECT_EQ(FrobeniusNorm(mm), fro) << "threads=" << threads;
    }
    SetNumThreads(1);
  }
}

TEST(SimdBackend, NameIsOneOfTheBuildOptions) {
  const std::string name = simd::BackendName();
  EXPECT_TRUE(name == "avx2" || name == "portable") << name;
}

}  // namespace
}  // namespace e2gcl
