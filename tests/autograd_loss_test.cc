#include "autograd/loss.h"

#include <cmath>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "test_util.h"

namespace e2gcl {
namespace {

using testing_util::CheckGradients;

Matrix RandM(std::int64_t r, std::int64_t c, std::uint64_t seed) {
  Rng rng(seed);
  return Matrix::RandomNormal(r, c, 0.0f, 1.0f, rng);
}

TEST(SoftmaxCrossEntropy, ForwardMatchesManual) {
  Var logits = Var::Param(Matrix::FromRows({{2, 0}, {0, 2}}));
  Var loss = ag::SoftmaxCrossEntropy(logits, {0, 1});
  // Each row: -log(e^2 / (e^2 + 1)).
  const float expected = -std::log(std::exp(2.0f) / (std::exp(2.0f) + 1.0f));
  EXPECT_NEAR(loss.value()(0, 0), expected, 1e-5f);
}

TEST(SoftmaxCrossEntropy, PerfectPredictionLowLoss) {
  Var logits = Var::Param(Matrix::FromRows({{50, 0, 0}, {0, 50, 0}}));
  Var loss = ag::SoftmaxCrossEntropy(logits, {0, 1});
  EXPECT_LT(loss.value()(0, 0), 1e-4f);
}

TEST(SoftmaxCrossEntropy, GradCheck) {
  CheckGradients({RandM(5, 4, 1)}, [](const std::vector<Var>& p) {
    return ag::SoftmaxCrossEntropy(p[0], {0, 3, 1, 2, 0});
  });
}

TEST(SoftmaxCrossEntropy, WeightedGradCheck) {
  CheckGradients({RandM(4, 3, 2)}, [](const std::vector<Var>& p) {
    return ag::SoftmaxCrossEntropy(p[0], {0, 2, 1, 1},
                                   {1.0f, 3.0f, 0.5f, 2.0f});
  });
}

TEST(SoftmaxCrossEntropy, WeightsShiftTheLoss) {
  Matrix logits = Matrix::FromRows({{3, 0}, {0, 3}});
  // Row 0 is correct, row 1 wrong under labels {0, 0}.
  Var a = Var::Param(logits);
  const float unweighted =
      ag::SoftmaxCrossEntropy(a, {0, 0}).value()(0, 0);
  const float upweight_wrong =
      ag::SoftmaxCrossEntropy(a, {0, 0}, {1.0f, 9.0f}).value()(0, 0);
  EXPECT_GT(upweight_wrong, unweighted);
}

TEST(InfoNce, GradCheckUnweighted) {
  CheckGradients(
      {RandM(4, 3, 3), RandM(4, 3, 4)},
      [](const std::vector<Var>& p) {
        return ag::InfoNce(p[0], p[1], 0.5f);
      },
      /*h=*/5e-3f, /*tol=*/3e-2f);
}

TEST(InfoNce, GradCheckWeighted) {
  CheckGradients(
      {RandM(3, 4, 5), RandM(3, 4, 6)},
      [](const std::vector<Var>& p) {
        return ag::InfoNce(p[0], p[1], 0.7f, {0.5f, 2.0f, 1.5f});
      },
      /*h=*/5e-3f, /*tol=*/3e-2f);
}

TEST(InfoNce, GradCheckThroughNormalization) {
  CheckGradients(
      {RandM(4, 5, 7), RandM(4, 5, 8)},
      [](const std::vector<Var>& p) {
        return ag::InfoNce(ag::NormalizeRowsL2(p[0]),
                           ag::NormalizeRowsL2(p[1]), 0.5f);
      },
      /*h=*/5e-3f, /*tol=*/4e-2f);
}

TEST(InfoNce, AlignedViewsBeatMisaligned) {
  // Identical views (perfect positives) should score lower loss than a
  // view paired with a row-shuffled copy.
  Rng rng(9);
  Matrix z = NormalizeRowsL2(Matrix::RandomNormal(8, 6, 0, 1, rng));
  Matrix shuffled = GatherRows(z, {3, 7, 0, 5, 1, 6, 2, 4});
  Var a = Var::Constant(z);
  const float aligned =
      ag::InfoNce(a, Var::Constant(z), 0.5f).value()(0, 0);
  const float misaligned =
      ag::InfoNce(a, Var::Constant(shuffled), 0.5f).value()(0, 0);
  EXPECT_LT(aligned, misaligned);
}

TEST(InfoNce, LowerTemperatureSharpens) {
  Rng rng(10);
  Matrix z1 = NormalizeRowsL2(Matrix::RandomNormal(6, 4, 0, 1, rng));
  // Positive pairs nearly aligned.
  Matrix z2 = z1;
  for (std::int64_t i = 0; i < z2.size(); ++i) {
    z2.data()[i] += 0.01f * rng.Normal();
  }
  z2 = NormalizeRowsL2(z2);
  const float hi =
      ag::InfoNce(Var::Constant(z1), Var::Constant(z2), 1.0f).value()(0, 0);
  const float lo =
      ag::InfoNce(Var::Constant(z1), Var::Constant(z2), 0.1f).value()(0, 0);
  // With near-perfect positives, sharper temperature gives lower loss.
  EXPECT_LT(lo, hi);
}

TEST(EuclideanContrastive, ForwardMatchesManual) {
  // Two rows, neg_perm = {1, 0}.
  Matrix a = Matrix::FromRows({{0, 0}, {1, 0}});
  Matrix b = Matrix::FromRows({{0, 1}, {1, 1}});
  Var va = Var::Param(a);
  Var vb = Var::Param(b);
  Var loss = ag::EuclideanContrastive(va, vb, {1, 0});
  // Positives: ||a0-b0||^2 = 1, ||a1-b1||^2 = 1 -> mean pos = 1.
  // Negatives row0 (u=1): ||a0-a1||^2 = 1, ||b0-a1||^2 = 1+1 = 2.
  // Negatives row1 (u=0): ||a1-a0||^2 = 1, ||b1-a0||^2 = 1+1 = 2.
  // loss = (1 - 0.5*(1+2) + 1 - 0.5*(1+2)) / 2 = (−0.5 −0.5)/2 = -0.5.
  EXPECT_NEAR(loss.value()(0, 0), -0.5f, 1e-5f);
}

TEST(EuclideanContrastive, GradCheck) {
  CheckGradients({RandM(4, 3, 11), RandM(4, 3, 12)},
                 [](const std::vector<Var>& p) {
                   return ag::EuclideanContrastive(p[0], p[1], {2, 3, 0, 1});
                 });
}

TEST(EuclideanContrastive, WeightedGradCheck) {
  CheckGradients({RandM(3, 2, 13), RandM(3, 2, 14)},
                 [](const std::vector<Var>& p) {
                   return ag::EuclideanContrastive(p[0], p[1], {1, 2, 0},
                                                   {2.0f, 1.0f, 3.0f});
                 });
}

TEST(BceWithLogits, ForwardMatchesManual) {
  Var logits = Var::Param(Matrix::FromRows({{0.0f}, {2.0f}}));
  Var loss = ag::BceWithLogits(logits, {1.0f, 0.0f});
  const float l0 = std::log(2.0f);                       // -log sigmoid(0)
  const float l1 = 2.0f + std::log1p(std::exp(-2.0f));   // -log(1-sig(2))
  EXPECT_NEAR(loss.value()(0, 0), (l0 + l1) / 2.0f, 1e-5f);
}

TEST(BceWithLogits, StableForExtremeLogits) {
  Var logits = Var::Param(Matrix::FromRows({{100.0f}, {-100.0f}}));
  Var loss = ag::BceWithLogits(logits, {1.0f, 0.0f});
  EXPECT_NEAR(loss.value()(0, 0), 0.0f, 1e-5f);
  Var bad = Var::Param(Matrix::FromRows({{100.0f}, {-100.0f}}));
  Var loss2 = ag::BceWithLogits(bad, {0.0f, 1.0f});
  EXPECT_NEAR(loss2.value()(0, 0), 100.0f, 1e-3f);
}

TEST(BceWithLogits, GradCheck) {
  CheckGradients({RandM(6, 1, 15)}, [](const std::vector<Var>& p) {
    return ag::BceWithLogits(p[0], {1, 0, 1, 1, 0, 0});
  });
}

TEST(CosinePredictionLoss, PerfectAlignmentIsZero) {
  Rng rng(16);
  Matrix z = Matrix::RandomNormal(5, 4, 0, 1, rng);
  Var loss =
      ag::CosinePredictionLoss(Var::Param(z), Var::Constant(Scale(z, 3.0f)));
  EXPECT_NEAR(loss.value()(0, 0), 0.0f, 1e-5f);
}

TEST(CosinePredictionLoss, OppositeIsFour) {
  Matrix z = Matrix::FromRows({{1, 0}, {0, 1}});
  Var loss = ag::CosinePredictionLoss(Var::Param(z),
                                      Var::Constant(Scale(z, -1.0f)));
  EXPECT_NEAR(loss.value()(0, 0), 4.0f, 1e-5f);
}

TEST(CosinePredictionLoss, GradCheck) {
  CheckGradients({RandM(3, 4, 17)}, [](const std::vector<Var>& p) {
    Rng rng(18);
    Var target = Var::Constant(Matrix::RandomNormal(3, 4, 0, 1, rng));
    return ag::CosinePredictionLoss(p[0], target);
  });
}

TEST(MseLoss, ZeroForEqualInputs) {
  Matrix z = RandM(3, 3, 19);
  EXPECT_NEAR(
      ag::MseLoss(Var::Param(z), Var::Constant(z)).value()(0, 0), 0.0f,
      1e-6f);
}

TEST(MseLoss, GradCheck) {
  CheckGradients({RandM(3, 3, 20), RandM(3, 3, 21)},
                 [](const std::vector<Var>& p) {
                   return ag::MseLoss(p[0], p[1]);
                 });
}

}  // namespace
}  // namespace e2gcl
