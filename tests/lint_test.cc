// Drives the e2gcl_lint engine against embedded good/bad fixtures for
// every rule, the suppression contract (justification required,
// rule-scoped), JSON output, exit codes — and finally self-checks that
// the shipped tree is lint-clean.

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "io/json.h"
#include "tools/lint/lint.h"
#include "tools/lint/rules.h"

namespace e2gcl {
namespace lint {
namespace {

// Counts unsuppressed findings for `rule` (the fixtures below must
// trip exactly the rule under test).
int Count(const std::vector<Finding>& fs, const std::string& rule) {
  int n = 0;
  for (const Finding& f : fs) {
    if (!f.suppressed && f.rule == rule) ++n;
  }
  return n;
}

int CountSuppressed(const std::vector<Finding>& fs, const std::string& rule) {
  int n = 0;
  for (const Finding& f : fs) {
    if (f.suppressed && f.rule == rule) ++n;
  }
  return n;
}

const char kLibPath[] = "src/core/fixture.cc";
const char kTestPath[] = "tests/fixture_test.cc";

// --- Rule: unordered-iteration ---------------------------------------

TEST(LintRules, UnorderedIterationFlagsRangeForAndDrain) {
  const std::string bad = R"(
    #include <unordered_map>
    double Sum(const std::unordered_map<int, double>& m) {
      std::unordered_map<int, double> local = m;
      double s = 0.0;
      for (const auto& [k, v] : local) s += v;
      std::vector<std::pair<int, double>> out(local.begin(), local.end());
      return s;
    }
  )";
  EXPECT_EQ(Count(LintContent(kLibPath, bad), "unordered-iteration"), 2);
}

TEST(LintRules, UnorderedIterationIgnoresLookupsAndOrderedContainers) {
  const std::string good = R"(
    #include <map>
    double Sum(const std::map<int, double>& m) {
      std::unordered_map<int, double> lookup;
      lookup[3] = 1.0;
      if (lookup.count(3) != 0) return lookup.find(3)->second;
      double s = 0.0;
      for (const auto& [k, v] : m) s += v;
      return s;
    }
  )";
  EXPECT_EQ(Count(LintContent(kLibPath, good), "unordered-iteration"), 0);
}

TEST(LintRules, UnorderedIterationOnlyAppliesToLibraryCode) {
  const std::string bad = R"(
    std::unordered_map<int, int> m;
    void F() { for (const auto& [k, v] : m) Use(k, v); }
  )";
  EXPECT_EQ(Count(LintContent(kTestPath, bad), "unordered-iteration"), 0);
  EXPECT_EQ(Count(LintContent(kLibPath, bad), "unordered-iteration"), 1);
}

// --- Rule: banned-random ---------------------------------------------

TEST(LintRules, BannedRandomFlagsLibcAndRandomDevice) {
  const std::string bad = R"(
    int F() {
      srand(42);
      std::random_device rd;
      return std::rand() + static_cast<int>(time(nullptr));
    }
  )";
  EXPECT_EQ(Count(LintContent(kLibPath, bad), "banned-random"), 3);
}

TEST(LintRules, BannedRandomAllowsRngModuleAndLookalikes) {
  const std::string lookalikes = R"(
    double WallTime() { return 0.0; }
    double runtime(int x) { return WallTime() + x; }
    int Strand(int brand) { return brand; }
  )";
  EXPECT_EQ(Count(LintContent(kLibPath, lookalikes), "banned-random"), 0);
  const std::string rng_impl = "std::random_device rd;\n";
  EXPECT_EQ(Count(LintContent("src/tensor/rng.cc", rng_impl), "banned-random"),
            0);
  EXPECT_EQ(Count(LintContent(kLibPath, rng_impl), "banned-random"), 1);
}

// --- Rule: atomic-float ----------------------------------------------

TEST(LintRules, AtomicFloatFlagsFloatAndDouble) {
  const std::string bad = R"(
    std::atomic<float> sum{0.0f};
    std::atomic< double > total{0.0};
  )";
  std::vector<Finding> fs = LintContent(kLibPath, bad);
  EXPECT_EQ(Count(fs, "atomic-float"), 2);
  const std::string good = "std::atomic<std::uint64_t> n{0};\n";
  EXPECT_EQ(Count(LintContent(kLibPath, good), "atomic-float"), 0);
}

// --- Rule: raw-file-write --------------------------------------------

TEST(LintRules, RawFileWriteFlagsOfstreamAndWriteModeFopen) {
  const std::string bad = R"(
    bool Save(const std::string& path) {
      std::ofstream out(path);
      std::FILE* f = std::fopen(path.c_str(), "wb");
      return out.good() && f != nullptr;
    }
  )";
  EXPECT_EQ(Count(LintContent(kLibPath, bad), "raw-file-write"), 2);
}

TEST(LintRules, RawFileWriteAllowsReadsAndNonLibraryCode) {
  const std::string reads = R"(
    bool Load(const std::string& path) {
      std::ifstream in(path);
      std::FILE* f = std::fopen(path.c_str(), "rb");
      return in.good() && f != nullptr;
    }
  )";
  EXPECT_EQ(Count(LintContent(kLibPath, reads), "raw-file-write"), 0);
  const std::string write = "std::ofstream out(\"x\");\n";
  EXPECT_EQ(Count(LintContent(kTestPath, write), "raw-file-write"), 0);
}

// --- Rule: naked-new-delete ------------------------------------------

TEST(LintRules, NakedNewDeleteFlagsBoth) {
  const std::string bad = R"(
    void F() {
      int* p = new int[3];
      delete[] p;
    }
  )";
  EXPECT_EQ(Count(LintContent(kLibPath, bad), "naked-new-delete"), 2);
}

TEST(LintRules, NakedNewDeleteAllowsDeletedFunctionsAndSmartPointers) {
  const std::string good = R"(
    struct NoCopy {
      NoCopy(const NoCopy&) = delete;
      NoCopy& operator=(const NoCopy&) = delete;
    };
    auto p = std::make_unique<int>(3);
    auto s = std::make_shared<int>(4);
  )";
  EXPECT_EQ(Count(LintContent(kLibPath, good), "naked-new-delete"), 0);
}

// --- Rule: stdout-in-library -----------------------------------------

TEST(LintRules, StdoutFlagsCoutAndPrintf) {
  const std::string bad = R"(
    void Report(int x) {
      std::cout << x;
      printf("%d", x);
    }
  )";
  EXPECT_EQ(Count(LintContent(kLibPath, bad), "stdout-in-library"), 2);
}

TEST(LintRules, StdoutAllowsStderrAndSnprintf) {
  const std::string good = R"(
    void Warn(const char* m) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%s", m);
      std::fprintf(stderr, "%s\n", buf);
    }
  )";
  EXPECT_EQ(Count(LintContent(kLibPath, good), "stdout-in-library"), 0);
  EXPECT_EQ(Count(LintContent("tools/cli.cc", "printf(\"x\");"),
                  "stdout-in-library"),
            0);
}

// --- Rule: parallel-reduction ----------------------------------------

TEST(LintRules, ParallelReductionFlagsCapturedAccumulator) {
  const std::string bad = R"(
    double Sum(const float* x, std::int64_t n) {
      double sum = 0.0;
      ParallelFor(0, n, 1 << 15, [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t i = b; i < e; ++i) sum += x[i];
      });
      return sum;
    }
  )";
  EXPECT_EQ(Count(LintContent(kLibPath, bad), "parallel-reduction"), 1);
}

TEST(LintRules, ParallelReductionAllowsChunkPartialsAndLocals) {
  const std::string good = R"(
    double Sum(const float* x, std::int64_t n) {
      std::vector<double> partial(NumChunks(n, kGrain), 0.0);
      ParallelForChunks(0, n, kGrain,
                        [&](std::int64_t c, std::int64_t b, std::int64_t e) {
        double acc = 0.0;
        for (std::int64_t i = b; i < e; ++i) acc += x[i];
        partial[c] += acc;
      });
      double sum = 0.0;
      for (double p : partial) sum += p;
      return sum;
    }
  )";
  EXPECT_EQ(Count(LintContent(kLibPath, good), "parallel-reduction"), 0);
}

// --- Rule: include-guard ---------------------------------------------

TEST(LintRules, IncludeGuardMissingMismatchedAndGood) {
  EXPECT_EQ(Count(LintContent("src/a.h", "struct A {};\n"), "include-guard"),
            1);
  const std::string mismatched =
      "#ifndef A_H_\n#define B_H_\nstruct A {};\n#endif\n";
  EXPECT_EQ(Count(LintContent("src/a.h", mismatched), "include-guard"), 1);
  const std::string unclosed = "#ifndef A_H_\n#define A_H_\nstruct A {};\n";
  EXPECT_EQ(Count(LintContent("src/a.h", unclosed), "include-guard"), 1);
  const std::string good =
      "#ifndef A_H_\n#define A_H_\nstruct A {};\n#endif  // A_H_\n";
  EXPECT_EQ(Count(LintContent("src/a.h", good), "include-guard"), 0);
  EXPECT_EQ(Count(LintContent("src/b.h", "#pragma once\nstruct B {};\n"),
                  "include-guard"),
            0);
  // Not a header: never flagged.
  EXPECT_EQ(Count(LintContent(kLibPath, "struct C {};\n"), "include-guard"),
            0);
}

// --- Rule: float-index-cast ------------------------------------------

TEST(LintRules, FloatIndexCastFlagsTruncationAndAllowsExplicitRounding) {
  const std::string bad =
      "const std::int64_t n = static_cast<std::int64_t>(total * frac);\n";
  EXPECT_EQ(Count(LintContent(kLibPath, bad), "float-index-cast"), 1);
  const std::string rounded =
      "const std::int64_t n = "
      "static_cast<std::int64_t>(std::floor(total * frac));\n";
  EXPECT_EQ(Count(LintContent(kLibPath, rounded), "float-index-cast"), 0);
  const std::string bytes =
      "const std::int64_t b = static_cast<std::int64_t>(sizeof(float));\n";
  EXPECT_EQ(Count(LintContent(kLibPath, bytes), "float-index-cast"), 0);
  const std::string ints =
      "const std::int64_t m = static_cast<std::int64_t>(rows * cols);\n";
  EXPECT_EQ(Count(LintContent(kLibPath, ints), "float-index-cast"), 0);
}

// --- Rule: raw-simd-intrinsic ----------------------------------------

TEST(LintRules, RawSimdIntrinsicFlagsIntrinsicsOutsideKernelLayer) {
  // The include token is spliced so this test file itself (whose string
  // contents are linted too) does not trip the rule.
  const std::string bad = std::string("#include <immintrin") + ".h>\n" + R"(
    float Sum8(const float* x) {
      __m256 v = _mm256_loadu_ps(x);
      v = _mm256_add_ps(v, v);
      return _mm_cvtss_f32(_mm256_castps256_ps128(v));
    }
  )";
  // include + __m256 decl + two lines with _mm* calls.
  EXPECT_EQ(Count(LintContent(kLibPath, bad), "raw-simd-intrinsic"), 4);
  EXPECT_EQ(Count(LintContent("tools/cli.cc", bad), "raw-simd-intrinsic"), 4);
}

TEST(LintRules, RawSimdIntrinsicAllowsKernelLayerAndLookalikes) {
  const std::string kernels = std::string("#include <immintrin") + ".h>\n" +
                              R"(
    __m256 Load(const float* x) { return _mm256_loadu_ps(x); }
  )";
  EXPECT_EQ(Count(LintContent("src/tensor/simd/simd_avx2.cc", kernels),
                  "raw-simd-intrinsic"),
            0);
  const std::string lookalikes = R"(
    #include "tensor/simd/simd.h"
    float f = simd::Dot(a, b, n);   // dispatched API is fine
    int comm_mm256 = 0;             // _mm must start the token
    // _mm256_loadu_ps in a comment does not count
  )";
  EXPECT_EQ(Count(LintContent(kLibPath, lookalikes), "raw-simd-intrinsic"),
            0);
}

TEST(LintRules, RawSimdIntrinsicHonorsJustifiedSuppression) {
  const std::string suppressed =
      "// e2gcl-lint: allow(raw-simd-intrinsic): prefetch hint only\n"
      "_mm_prefetch(p, 1);\n";
  const std::vector<Finding> fs = LintContent(kLibPath, suppressed);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_TRUE(fs[0].suppressed);
  EXPECT_EQ(CountUnsuppressed(fs), 0);
}

// --- Rule: raw-socket-io ----------------------------------------------

TEST(LintRules, RawSocketIoFlagsSyscallsAndHeadersOutsideNet) {
  const std::string bad = std::string("#include <sys/socket") + ".h>\n" +
                          std::string("#include <netinet/tcp") + ".h>\n" + R"(
    int Dial(int fd, const sockaddr* a, socklen_t n) {
      if (::connect(fd, a, n) != 0) return -1;
      return static_cast<int>(::send(fd, "x", 1, 0));
    }
  )";
  // Two headers + ::connect + ::send.
  EXPECT_EQ(Count(LintContent(kLibPath, bad), "raw-socket-io"), 4);
  EXPECT_EQ(Count(LintContent("src/serve/embedding_server.cc", bad),
                  "raw-socket-io"),
            4);
}

TEST(LintRules, RawSocketIoAllowsNetLayerToolsTestsAndLookalikes) {
  const std::string sockets = std::string("#include <sys/socket") + ".h>\n" +
                              "::recv(fd, buf, n, 0);\n";
  EXPECT_EQ(Count(LintContent("src/net/server.cc", sockets), "raw-socket-io"),
            0);
  EXPECT_EQ(Count(LintContent("src/net/client.cc", sockets), "raw-socket-io"),
            0);
  // Tools and tests talk to sockets on purpose (bench clients, torture
  // fixtures forging hostile frames).
  EXPECT_EQ(Count(LintContent("tools/e2gcl_serve.cc", sockets),
                  "raw-socket-io"),
            0);
  EXPECT_EQ(Count(LintContent(kTestPath, sockets), "raw-socket-io"), 0);
  const std::string lookalikes = R"(
    #include "net/client.h"
    std::bind(&F::Run, this);        // unqualified lookalike names
    client.connect();                 // member call, not ::connect
    listener->accept_all();
    // ::send in a comment does not count
  )";
  EXPECT_EQ(Count(LintContent(kLibPath, lookalikes), "raw-socket-io"), 0);
}

TEST(LintRules, RawSocketIoHonorsJustifiedSuppression) {
  const std::string suppressed =
      "// e2gcl-lint: allow(raw-socket-io): self-pipe wakeup, not a socket\n"
      "::send(fd, &b, 1, 0);\n";
  const std::vector<Finding> fs = LintContent(kLibPath, suppressed);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_TRUE(fs[0].suppressed);
  EXPECT_EQ(CountUnsuppressed(fs), 0);
}

// --- Rule: test-include-in-library -----------------------------------

TEST(LintRules, TestIncludeFlagsTestsToolsAndRelativeIncludes) {
  EXPECT_EQ(Count(LintContent(kLibPath, "#include \"tests/test_util.h\"\n"),
                  "test-include-in-library"),
            1);
  EXPECT_EQ(Count(LintContent(kLibPath, "#include \"tools/lint/lint.h\"\n"),
                  "test-include-in-library"),
            1);
  EXPECT_EQ(Count(LintContent(kLibPath, "#include \"../secret.h\"\n"),
                  "test-include-in-library"),
            1);
  EXPECT_EQ(Count(LintContent(kLibPath, "#include \"graph/graph.h\"\n"),
                  "test-include-in-library"),
            0);
  // Tests may include tool headers (this very test does).
  EXPECT_EQ(Count(LintContent(kTestPath, "#include \"tools/lint/lint.h\"\n"),
                  "test-include-in-library"),
            0);
}

// --- Suppressions -----------------------------------------------------

TEST(LintSuppressions, JustifiedSuppressionSilencesFinding) {
  const std::string code =
      "std::cout << 1;  // e2gcl-lint: allow(stdout-in-library): fixture\n";
  std::vector<Finding> fs = LintContent(kLibPath, code);
  EXPECT_EQ(Count(fs, "stdout-in-library"), 0);
  EXPECT_EQ(CountSuppressed(fs, "stdout-in-library"), 1);
  for (const Finding& f : fs) {
    if (f.suppressed) {
      EXPECT_EQ(f.justification, "fixture");
    }
  }
  EXPECT_EQ(ExitCode(fs), 0);
}

TEST(LintSuppressions, SuppressionOnOwnLineCoversNextCodeLine) {
  const std::string code =
      "// e2gcl-lint: allow(stdout-in-library): fixture covers next line\n"
      "std::cout << 1;\n";
  std::vector<Finding> fs = LintContent(kLibPath, code);
  EXPECT_EQ(Count(fs, "stdout-in-library"), 0);
  EXPECT_EQ(CountSuppressed(fs, "stdout-in-library"), 1);
}

TEST(LintSuppressions, MissingJustificationIsItselfAFinding) {
  const std::string code =
      "std::cout << 1;  // e2gcl-lint: allow(stdout-in-library)\n";
  std::vector<Finding> fs = LintContent(kLibPath, code);
  // The bare allow() does not suppress, and is reported itself.
  EXPECT_EQ(Count(fs, "stdout-in-library"), 1);
  EXPECT_EQ(Count(fs, "suppression-justification"), 1);
  EXPECT_EQ(ExitCode(fs), 1);
  // Empty justification after the colon is just as invalid.
  const std::string empty =
      "std::cout << 1;  // e2gcl-lint: allow(stdout-in-library):   \n";
  fs = LintContent(kLibPath, empty);
  EXPECT_EQ(Count(fs, "stdout-in-library"), 1);
  EXPECT_EQ(Count(fs, "suppression-justification"), 1);
}

TEST(LintSuppressions, UnknownRuleIsAFinding) {
  const std::string code =
      "int x = 0;  // e2gcl-lint: allow(no-such-rule): because\n";
  std::vector<Finding> fs = LintContent(kLibPath, code);
  EXPECT_EQ(Count(fs, "suppression-justification"), 1);
}

TEST(LintSuppressions, SuppressionsAreRuleScoped) {
  // Two different violations on one line; only one is suppressed.
  const std::string code =
      "std::cout << std::rand();  "
      "// e2gcl-lint: allow(stdout-in-library): fixture\n";
  std::vector<Finding> fs = LintContent(kLibPath, code);
  EXPECT_EQ(Count(fs, "stdout-in-library"), 0);
  EXPECT_EQ(CountSuppressed(fs, "stdout-in-library"), 1);
  EXPECT_EQ(Count(fs, "banned-random"), 1);  // NOT silenced
  EXPECT_EQ(ExitCode(fs), 1);
}

TEST(LintSuppressions, SuppressionDoesNotLeakToOtherLines) {
  const std::string code =
      "std::cout << 1;  // e2gcl-lint: allow(stdout-in-library): fixture\n"
      "std::cout << 2;\n";
  std::vector<Finding> fs = LintContent(kLibPath, code);
  EXPECT_EQ(Count(fs, "stdout-in-library"), 1);
}

// --- Rule: blocking-in-event-loop ------------------------------------

TEST(LintRules, BlockingInEventLoopFlagsDirectAndTransitiveBlocking) {
  const std::string bad = R"(
    void Step() {
      queue_cv_.Wait(lock);
    }
    void Loop() E2GCL_LOOP_BODY {
      Step();
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  )";
  std::vector<Finding> fs = LintContent(kLibPath, bad);
  // One direct (sleep_for in the loop body) and one transitive
  // (.Wait( in Step, reachable from Loop).
  EXPECT_EQ(Count(fs, "blocking-in-event-loop"), 2);
}

TEST(LintRules, BlockingInEventLoopIgnoresUnmarkedAndUnreachableCode) {
  // No E2GCL_LOOP_BODY marker anywhere: blocking is fine.
  const std::string unmarked = R"(
    void Worker() {
      queue_cv_.Wait(lock);
    }
  )";
  EXPECT_EQ(Count(LintContent(kLibPath, unmarked), "blocking-in-event-loop"),
            0);
  // Marker present, but the blocking function is never called from the
  // loop.
  const std::string unreachable = R"(
    void Loop() E2GCL_LOOP_BODY {
      Drain();
    }
    void Shutdown() {
      worker_.join();
    }
  )";
  EXPECT_EQ(
      Count(LintContent(kLibPath, unreachable), "blocking-in-event-loop"), 0);
}

TEST(LintRules, BlockingInEventLoopHonorsJustifiedSuppression) {
  const std::string code = R"(
    void Loop() E2GCL_LOOP_BODY {
      // e2gcl-lint: allow(blocking-in-event-loop): poller wait is bounded
      poller_->Wait(timeout_ms, &events);
    }
  )";
  std::vector<Finding> fs = LintContent(kLibPath, code);
  EXPECT_EQ(Count(fs, "blocking-in-event-loop"), 0);
  EXPECT_EQ(CountSuppressed(fs, "blocking-in-event-loop"), 1);
}

// --- Rule: unannotated-mutex -----------------------------------------

TEST(LintRules, UnannotatedMutexFlagsUnreferencedMutexAndBareCondVar) {
  const std::string bad = R"(
    class Queue {
      Mutex mu_;
      CondVar cv_;
    };
  )";
  EXPECT_EQ(Count(LintContent(kLibPath, bad), "unannotated-mutex"), 2);
}

TEST(LintRules, UnannotatedMutexAllowsGuardingMutexAndGuardedCondVar) {
  const std::string good = R"(
    class Queue {
      mutable Mutex mu_;
      CondVar cv_ E2GCL_GUARDED_BY(mu_);
      int depth_ E2GCL_GUARDED_BY(mu_) = 0;
    };
  )";
  EXPECT_EQ(Count(LintContent(kLibPath, good), "unannotated-mutex"), 0);
  // The rule is library-scoped: test scaffolding may use bare mutexes.
  const std::string bare = "std::mutex mu;\n";
  EXPECT_EQ(Count(LintContent(kTestPath, bare), "unannotated-mutex"), 0);
}

// --- Rule: lock-order -------------------------------------------------

TEST(LintRules, LockOrderFlagsCycleAgainstDeclaredManifest) {
  const std::string bad = R"(
    // e2gcl-lock-order: a_mu < b_mu
    void Transfer() {
      MutexLock outer(b_mu);
      MutexLock inner(a_mu);
    }
  )";
  EXPECT_GE(Count(LintContent(kLibPath, bad), "lock-order"), 1);
}

TEST(LintRules, LockOrderFlagsReacquisitionWhileHeld) {
  const std::string self_nest = R"(
    void Recurse() {
      MutexLock outer(mu_);
      MutexLock inner(mu_);
    }
  )";
  EXPECT_EQ(Count(LintContent(kLibPath, self_nest), "lock-order"), 1);
  // E2GCL_REQUIRES implies the capability for the whole body.
  const std::string requires_nest = R"(
    void DrainLocked() E2GCL_REQUIRES(mu_) {
      MutexLock lock(mu_);
    }
  )";
  EXPECT_EQ(Count(LintContent(kLibPath, requires_nest), "lock-order"), 1);
}

TEST(LintRules, LockOrderAllowsConsistentAndScopedAcquisition) {
  const std::string good = R"(
    // e2gcl-lock-order: a_mu < b_mu
    void Transfer() {
      MutexLock outer(a_mu);
      MutexLock inner(b_mu);
    }
    void Sequential() {
      { MutexLock first(b_mu); }
      MutexLock second(a_mu);
    }
  )";
  EXPECT_EQ(Count(LintContent(kLibPath, good), "lock-order"), 0);
}

// --- Rule: hold-lock-across-callback ---------------------------------

TEST(LintRules, HoldLockAcrossCallbackFlagsCallbacksUnderLock) {
  const std::string bad = R"(
    std::function<void()> on_done;
    void Finish() {
      MutexLock lock(mu_);
      on_done();
      on_error_cb_(1);
      (*hook)(2);
    }
  )";
  EXPECT_EQ(Count(LintContent(kLibPath, bad), "hold-lock-across-callback"), 3);
}

TEST(LintRules, HoldLockAcrossCallbackAllowsUnlockCallLockShape) {
  const std::string good = R"(
    void Finish() {
      MutexLock lock(mu_);
      ++depth_;
      lock.Unlock();
      on_done_cb_();
      lock.Lock();
      --depth_;
    }
    void NoLock() {
      on_done_cb_();
    }
    void PlainCalls() {
      MutexLock lock(mu_);
      Drain();
      queue_.push_back(1);
    }
  )";
  EXPECT_EQ(Count(LintContent(kLibPath, good), "hold-lock-across-callback"),
            0);
}

// --- Lexer: backslash-newline splicing -------------------------------

TEST(LintLexer, LineCommentContinuationExtendsTheComment) {
  // A '\' at the end of a // comment splices the next physical line
  // into the comment (phase-2 splicing), so line 2 is not code.
  const std::string code =
      "// hidden \\\n"
      "std::cout << 1;\n"
      "std::cout << 2;\n";
  std::vector<Finding> fs = LintContent(kLibPath, code);
  ASSERT_EQ(Count(fs, "stdout-in-library"), 1);
  for (const Finding& f : fs) {
    if (f.rule == "stdout-in-library") {
      EXPECT_EQ(f.line, 3);
    }
  }
}

TEST(LintLexer, StringContinuationKeepsLineNumbersAligned) {
  // A spliced string literal must still advance the physical line
  // counter, so findings after it land on the right line.
  const std::string code =
      "const char* s = \"ab\\\n"
      "cd\";\n"
      "std::cout << 1;\n";
  std::vector<Finding> fs = LintContent(kLibPath, code);
  ASSERT_EQ(Count(fs, "stdout-in-library"), 1);
  for (const Finding& f : fs) {
    if (f.rule == "stdout-in-library") {
      EXPECT_EQ(f.line, 3);
    }
  }
}

// --- Per-rule stats (--stats) ----------------------------------------

TEST(LintStats, AccumulatesPerRuleTimingAndFindingCounts) {
  SetRuleStatsEnabled(true);
  ResetRuleStats();
  LintContent(kLibPath, "std::cout << 1;\n");
  std::vector<RuleStat> stats = RuleStats();
  SetRuleStatsEnabled(false);
  ASSERT_EQ(stats.size(), RuleTable().size());
  bool saw_stdout_rule = false;
  for (std::size_t i = 0; i < stats.size(); ++i) {
    EXPECT_EQ(stats[i].name, RuleTable()[i].name);
    EXPECT_GE(stats[i].nanos, 0);
    if (stats[i].name == "stdout-in-library") {
      saw_stdout_rule = true;
      EXPECT_EQ(stats[i].findings, 1);
    } else {
      EXPECT_EQ(stats[i].findings, 0);
    }
  }
  EXPECT_TRUE(saw_stdout_rule);
  ResetRuleStats();
  EXPECT_TRUE(RuleStats().empty());
}

TEST(LintStats, DisabledByDefaultCostsNothing) {
  ResetRuleStats();
  LintContent(kLibPath, "std::cout << 1;\n");
  EXPECT_TRUE(RuleStats().empty());
}

// --- Comments and strings never trip rules ---------------------------

TEST(LintLexer, CommentedAndQuotedCodeIsIgnored) {
  const std::string code = R"(
    // std::cout << std::rand();  (commented out)
    /* std::atomic<float> old_code; */
    const char* kDoc = "call srand(42) then std::cout";
  )";
  std::vector<Finding> fs = LintContent(kLibPath, code);
  EXPECT_EQ(CountUnsuppressed(fs), 0);
}

// --- JSON output ------------------------------------------------------

TEST(LintJson, ReportRoundTripsAndCounts) {
  const std::string code =
      "std::cout << 1;\n"
      "std::atomic<float> f;  // e2gcl-lint: allow(atomic-float): fixture\n";
  std::vector<Finding> fs = LintContent(kLibPath, code);
  JsonValue report = FindingsToJson(fs);
  const std::string text = DumpJson(report);
  JsonValue parsed;
  std::string error;
  ASSERT_TRUE(ParseJson(text, &parsed, &error)) << error;
  EXPECT_EQ(parsed.Find("version")->AsInt(), 1);
  const JsonValue* counts = parsed.Find("counts");
  ASSERT_NE(counts, nullptr);
  EXPECT_EQ(counts->Find("error")->AsInt(), 1);
  EXPECT_EQ(counts->Find("warning")->AsInt(), 0);
  EXPECT_EQ(counts->Find("suppressed")->AsInt(), 1);
  const JsonValue* findings = parsed.Find("findings");
  ASSERT_NE(findings, nullptr);
  ASSERT_EQ(findings->items().size(), 1u);
  const JsonValue& f0 = findings->items()[0];
  EXPECT_EQ(f0.Find("rule")->AsString(), "stdout-in-library");
  EXPECT_EQ(f0.Find("severity")->AsString(), "error");
  EXPECT_EQ(f0.Find("file")->AsString(), kLibPath);
  EXPECT_EQ(f0.Find("line")->AsInt(), 1);
  const JsonValue* suppressed = parsed.Find("suppressed");
  ASSERT_NE(suppressed, nullptr);
  ASSERT_EQ(suppressed->items().size(), 1u);
  EXPECT_EQ(suppressed->items()[0].Find("justification")->AsString(),
            "fixture");
}

// --- Exit codes -------------------------------------------------------

TEST(LintExitCodes, CleanIsZeroFindingsAreOne) {
  EXPECT_EQ(ExitCode({}), 0);
  std::vector<Finding> fs =
      LintContent(kLibPath, "std::cout << 1;\n");
  EXPECT_EQ(ExitCode(fs), 1);
  // Warnings gate too: zero unsuppressed findings means zero.
  fs = LintContent(
      kLibPath,
      "const std::int64_t n = static_cast<std::int64_t>(total * frac);\n");
  ASSERT_EQ(CountUnsuppressed(fs), 1);
  EXPECT_EQ(fs[0].severity, Severity::kWarning);
  EXPECT_EQ(ExitCode(fs), 1);
}

TEST(LintExitCodes, UnreadablePathReportsError) {
  std::vector<Finding> fs;
  std::string error;
  EXPECT_FALSE(LintTree("/nonexistent-root", {}, &fs, &error));
  EXPECT_FALSE(error.empty());
}

// --- Rule registry ----------------------------------------------------

TEST(LintRegistry, AllRulesAreKnownAndDocumented) {
  EXPECT_GE(Rules().size(), 10u);
  for (const RuleInfo& r : Rules()) {
    EXPECT_TRUE(IsKnownRule(r.name));
    EXPECT_FALSE(r.summary.empty());
  }
  EXPECT_FALSE(IsKnownRule("no-such-rule"));
}

// --- Self-check: the shipped tree is lint-clean ----------------------

TEST(LintSelfCheck, ShippedTreeHasZeroUnsuppressedFindings) {
  std::vector<Finding> fs;
  std::string error;
  ASSERT_TRUE(LintTree(E2GCL_SOURCE_DIR, {}, &fs, &error)) << error;
  for (const Finding& f : fs) {
    EXPECT_TRUE(f.suppressed) << f.file << ":" << f.line << ": [" << f.rule
                              << "] " << f.message;
    if (f.suppressed) {
      // Every shipped suppression carries its justification.
      EXPECT_FALSE(f.justification.empty()) << f.file << ":" << f.line;
    }
  }
  EXPECT_EQ(ExitCode(fs), 0);
}

}  // namespace
}  // namespace lint
}  // namespace e2gcl
