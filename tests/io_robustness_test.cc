// Regression tests for eval/io hardening: malformed CSV / edge-list
// input must return false (never UB, never an abort), and well-formed
// graphs must round-trip exactly — including labels, isolated nodes,
// and the empty graph.

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "eval/io.h"
#include "graph/graph.h"
#include "test_util.h"

namespace e2gcl {
namespace {

namespace fs = std::filesystem;

class IoRobustnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("e2gcl_io_test_" + std::to_string(::getpid())))
               .string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string WriteFile(const std::string& name, const std::string& text) {
    const std::string path = dir_ + "/" + name;
    std::ofstream out(path);
    out << text;
    return path;
  }

  std::string dir_;
};

// ---------------------------------------------------------------------------
// LoadMatrixCsv: malformed inputs.
// ---------------------------------------------------------------------------

TEST_F(IoRobustnessTest, CsvRejectsRaggedRows) {
  Matrix m;
  EXPECT_FALSE(LoadMatrixCsv(WriteFile("ragged.csv", "1,2,3\n4,5\n"), &m));
}

TEST_F(IoRobustnessTest, CsvRejectsNonNumericTokens) {
  Matrix m;
  EXPECT_FALSE(LoadMatrixCsv(WriteFile("alpha.csv", "1,2\nx,4\n"), &m));
  EXPECT_FALSE(LoadMatrixCsv(WriteFile("suffix.csv", "1,2\n3pt5,4\n"), &m));
  EXPECT_FALSE(LoadMatrixCsv(WriteFile("empty_cell.csv", "1,,3\n"), &m));
}

TEST_F(IoRobustnessTest, CsvRejectsNullOutput) {
  EXPECT_FALSE(LoadMatrixCsv(WriteFile("ok.csv", "1,2\n"), nullptr));
  Matrix m;
  EXPECT_FALSE(LoadMatrixCsv(dir_ + "/does_not_exist.csv", &m));
}

TEST_F(IoRobustnessTest, CsvAcceptsScientificNegativeAndCrlf) {
  Matrix m;
  ASSERT_TRUE(
      LoadMatrixCsv(WriteFile("sci.csv", "-1.5,2e-3\r\n+4,.5\r\n"), &m));
  ASSERT_EQ(m.rows(), 2);
  ASSERT_EQ(m.cols(), 2);
  EXPECT_FLOAT_EQ(m(0, 0), -1.5f);
  EXPECT_FLOAT_EQ(m(0, 1), 2e-3f);
  EXPECT_FLOAT_EQ(m(1, 0), 4.0f);
  EXPECT_FLOAT_EQ(m(1, 1), 0.5f);
}

TEST_F(IoRobustnessTest, CsvMatrixRoundTripExact) {
  Rng rng(11);
  Matrix m = Matrix::RandomNormal(7, 4, 0.0f, 2.0f, rng);
  const std::string path = dir_ + "/roundtrip.csv";
  ASSERT_TRUE(SaveMatrixCsv(m, path));
  Matrix back;
  ASSERT_TRUE(LoadMatrixCsv(path, &back));
  ASSERT_EQ(back.rows(), m.rows());
  ASSERT_EQ(back.cols(), m.cols());
  // Text round-trip is near-exact (default float formatting).
  EXPECT_LT(MaxAbsDiff(m, back), 1e-4f);
}

// ---------------------------------------------------------------------------
// LoadGraphEdgeList: malformed inputs.
// ---------------------------------------------------------------------------

TEST_F(IoRobustnessTest, EdgeListRejectsMalformedHeaders) {
  Graph g;
  EXPECT_FALSE(LoadGraphEdgeList(WriteFile("neg.txt", "-3 2\n"), &g));
  EXPECT_FALSE(LoadGraphEdgeList(WriteFile("negc.txt", "3 -2\n"), &g));
  EXPECT_FALSE(LoadGraphEdgeList(WriteFile("alpha.txt", "abc 2\n"), &g));
  EXPECT_FALSE(LoadGraphEdgeList(WriteFile("empty.txt", ""), &g));
  // Oversized header: would otherwise drive a giant allocation.
  EXPECT_FALSE(
      LoadGraphEdgeList(WriteFile("huge.txt", "99999999999999 2\n"), &g));
}

TEST_F(IoRobustnessTest, EdgeListRejectsOutOfRangeNodeIds) {
  Graph g;
  EXPECT_FALSE(LoadGraphEdgeList(WriteFile("oob.txt", "3 2\n0 7\n"), &g));
  EXPECT_FALSE(LoadGraphEdgeList(WriteFile("negid.txt", "3 2\n-1 2\n"), &g));
}

TEST_F(IoRobustnessTest, EdgeListRejectsNonNumericTokens) {
  Graph g;
  EXPECT_FALSE(LoadGraphEdgeList(WriteFile("tok.txt", "3 2\n0 one\n"), &g));
  EXPECT_FALSE(LoadGraphEdgeList(WriteFile("tok2.txt", "3 2\ntwo 1\n"), &g));
  EXPECT_FALSE(LoadGraphEdgeList(WriteFile("dangling.txt", "3 2\n0\n"), &g));
}

TEST_F(IoRobustnessTest, EdgeListRejectsBadLabelBlocks) {
  Graph g;
  // Too few labels.
  EXPECT_FALSE(LoadGraphEdgeList(
      WriteFile("short.txt", "3 2\n0 1\nlabels\n0\n1\n"), &g));
  // Label out of [0, num_classes).
  EXPECT_FALSE(LoadGraphEdgeList(
      WriteFile("range.txt", "3 2\n0 1\nlabels\n0\n1\n5\n"), &g));
  // Non-numeric label.
  EXPECT_FALSE(LoadGraphEdgeList(
      WriteFile("alpha.txt", "3 2\n0 1\nlabels\n0\n1\nx\n"), &g));
  // Trailing garbage after the label block.
  EXPECT_FALSE(LoadGraphEdgeList(
      WriteFile("trail.txt", "3 2\n0 1\nlabels\n0\n1\n1\nextra\n"), &g));
  // Labels with a zero class count are inconsistent.
  EXPECT_FALSE(LoadGraphEdgeList(
      WriteFile("zeroc.txt", "3 0\n0 1\nlabels\n0\n0\n0\n"), &g));
}

// ---------------------------------------------------------------------------
// SaveGraphEdgeList / LoadGraphEdgeList round-trips.
// ---------------------------------------------------------------------------

void ExpectSameStructure(const Graph& a, const Graph& b) {
  EXPECT_EQ(a.num_nodes, b.num_nodes);
  EXPECT_EQ(a.num_classes, b.num_classes);
  EXPECT_EQ(a.row_ptr, b.row_ptr);
  EXPECT_EQ(a.col, b.col);
  EXPECT_EQ(a.labels, b.labels);
}

TEST_F(IoRobustnessTest, RoundTripWithLabels) {
  Graph g = testing_util::SmallGraph();
  const std::string path = dir_ + "/labeled.txt";
  ASSERT_TRUE(SaveGraphEdgeList(g, path));
  Graph back;
  ASSERT_TRUE(LoadGraphEdgeList(path, &back));
  ExpectSameStructure(g, back);
}

TEST_F(IoRobustnessTest, RoundTripWithIsolatedNodes) {
  // Nodes 3 and 5 have no incident edges; the header keeps them alive.
  Graph g = BuildGraph(6, {{0, 1}, {1, 2}, {2, 4}}, Matrix(),
                       {0, 1, 0, 1, 0, 1}, 2);
  const std::string path = dir_ + "/isolated.txt";
  ASSERT_TRUE(SaveGraphEdgeList(g, path));
  Graph back;
  ASSERT_TRUE(LoadGraphEdgeList(path, &back));
  ExpectSameStructure(g, back);
  EXPECT_EQ(back.Degree(3), 0);
  EXPECT_EQ(back.Degree(5), 0);
}

TEST_F(IoRobustnessTest, RoundTripUnlabeledGraph) {
  Graph g = BuildGraph(4, {{0, 3}, {1, 2}});
  const std::string path = dir_ + "/unlabeled.txt";
  ASSERT_TRUE(SaveGraphEdgeList(g, path));
  Graph back;
  ASSERT_TRUE(LoadGraphEdgeList(path, &back));
  ExpectSameStructure(g, back);
}

TEST_F(IoRobustnessTest, RoundTripEmptyGraph) {
  Graph g;  // 0 nodes, 0 edges
  const std::string path = dir_ + "/empty.txt";
  ASSERT_TRUE(SaveGraphEdgeList(g, path));
  Graph back;
  ASSERT_TRUE(LoadGraphEdgeList(path, &back));
  EXPECT_EQ(back.num_nodes, 0);
  EXPECT_EQ(back.num_edges(), 0);
  EXPECT_TRUE(back.labels.empty());
}

}  // namespace
}  // namespace e2gcl
